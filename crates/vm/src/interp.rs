//! Interpreter: straight-line dispatch over arena-recycled set registers.
//!
//! A register file is a `Vec<NodeSet>` borrowed from a thread-local
//! `Arena` and returned when evaluation finishes. [`twx_xtree::NodeSet::reset`]
//! keeps the word buffers, so a hot `eval_cached` loop touches the
//! allocator only when a document is larger than anything the thread has
//! evaluated before.
//!
//! Dispatch counters are accumulated in a local `Stats` and flushed to
//! the thread-local obs slots once per top-level evaluation, keeping the
//! inner loop free of instrumentation cost (the overhead gate in ci.sh
//! measures exactly this).

use crate::{Instr, Program, Reg};
use twx_obs::{self as obs, Counter};
use twx_regxpath::ast::Axis;
use twx_xtree::{NodeSet, Tree};

/// A pool of recycled `NodeSet` registers.
#[derive(Default)]
pub struct Arena {
    pool: Vec<NodeSet>,
}

impl Arena {
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Number of pooled registers (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    fn file(&mut self, n_regs: usize, universe: usize, stats: &mut Stats) -> Vec<NodeSet> {
        let mut file = Vec::with_capacity(n_regs);
        for _ in 0..n_regs {
            let mut s = self.pool.pop().unwrap_or_else(|| {
                stats.arena_allocs += 1;
                NodeSet::empty(0)
            });
            s.reset(universe);
            file.push(s);
        }
        file
    }

    fn put_back(&mut self, file: Vec<NodeSet>) {
        self.pool.extend(file);
    }
}

thread_local! {
    static ARENA: std::cell::RefCell<Arena> = std::cell::RefCell::new(Arena::new());
}

#[derive(Default)]
struct Stats {
    instrs: u64,
    closure_iters: u64,
    arena_allocs: u64,
}

impl Stats {
    fn flush(&self) {
        obs::add(Counter::VmInstructions, self.instrs);
        obs::add(Counter::VmClosureIters, self.closure_iters);
        obs::add(Counter::VmArenaAllocs, self.arena_allocs);
    }
}

/// Evaluation options: how many scoped worker threads one evaluation
/// may use. `threads == 1` (the default) takes the original sequential
/// code path instruction for instruction; above 1 the `AxisImage`,
/// `Star` and `FilterJoin` instructions dispatch to the `twx-frontier`
/// parallel kernels, which still collapse to inline execution below
/// their work grains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalOpts {
    /// Upper bound on scoped worker threads per evaluation.
    pub threads: usize,
}

impl Default for EvalOpts {
    fn default() -> Self {
        EvalOpts { threads: 1 }
    }
}

impl EvalOpts {
    /// Options for an explicit thread count (0 is clamped to 1).
    pub fn with_threads(threads: usize) -> EvalOpts {
        EvalOpts {
            threads: threads.max(1),
        }
    }
}

/// Runs a path program: the image of `ctx` under the compiled expression.
pub fn eval_image(t: &Tree, prog: &Program, ctx: &NodeSet) -> NodeSet {
    eval_image_opts(t, prog, ctx, EvalOpts::default())
}

/// [`eval_image`] with explicit [`EvalOpts`].
pub fn eval_image_opts(t: &Tree, prog: &Program, ctx: &NodeSet, opts: EvalOpts) -> NodeSet {
    assert_eq!(ctx.universe(), t.len(), "context set universe mismatch");
    let mut stats = Stats::default();
    let out = ARENA.with(|a| run(prog, t, Some(ctx), &mut a.borrow_mut(), &mut stats, opts));
    stats.flush();
    out
}

/// Runs a node-expression program: the set of nodes where `φ` holds.
pub fn eval_node_set(t: &Tree, prog: &Program) -> NodeSet {
    eval_node_set_opts(t, prog, EvalOpts::default())
}

/// [`eval_node_set`] with explicit [`EvalOpts`].
pub fn eval_node_set_opts(t: &Tree, prog: &Program, opts: EvalOpts) -> NodeSet {
    let mut stats = Stats::default();
    let out = ARENA.with(|a| run(prog, t, None, &mut a.borrow_mut(), &mut stats, opts));
    stats.flush();
    out
}

fn run(
    prog: &Program,
    t: &Tree,
    ctx: Option<&NodeSet>,
    arena: &mut Arena,
    stats: &mut Stats,
    opts: EvalOpts,
) -> NodeSet {
    let mut regs = arena.file(prog.n_regs as usize, t.len(), stats);
    exec_block(prog, 0, t, ctx, &mut regs, arena, stats, opts);
    let out = std::mem::replace(&mut regs[prog.out as usize], NodeSet::empty(0));
    arena.put_back(regs);
    out
}

#[allow(clippy::too_many_arguments)]
fn exec_block(
    prog: &Program,
    block: usize,
    t: &Tree,
    ctx: Option<&NodeSet>,
    regs: &mut [NodeSet],
    arena: &mut Arena,
    stats: &mut Stats,
    opts: EvalOpts,
) {
    let n = t.len();
    for instr in &prog.blocks[block] {
        stats.instrs += 1;
        match *instr {
            Instr::LoadEmpty { dst } => regs[dst as usize].reset(n),
            Instr::LoadFull { dst } => {
                let d = &mut regs[dst as usize];
                d.reset(n);
                d.set_full();
            }
            Instr::LoadLabel { dst, label } => {
                let d = &mut regs[dst as usize];
                d.reset(n);
                for v in t.nodes() {
                    if t.label(v) == label {
                        d.insert(v);
                    }
                }
            }
            Instr::LoadCtx { dst } => {
                let c = ctx.expect("vm: LoadCtx in a context-free (nested) program");
                regs[dst as usize].copy_from(c);
            }
            Instr::Copy { dst, src } => {
                let (d, s) = pair_mut(regs, dst, src);
                d.copy_from(s);
            }
            Instr::Union { dst, src } => {
                let (d, s) = pair_mut(regs, dst, src);
                d.union_with(s);
            }
            Instr::Intersect { dst, src } => {
                let (d, s) = pair_mut(regs, dst, src);
                d.intersect_with(s);
            }
            Instr::Difference { dst, src } => {
                let (d, s) = pair_mut(regs, dst, src);
                d.difference_with(s);
            }
            Instr::Complement { dst } => regs[dst as usize].complement(),
            Instr::AxisImage { dst, src, axis } => {
                let (d, s) = pair_mut(regs, dst, src);
                if opts.threads > 1 {
                    twx_frontier::axis_image_into(t, step_of(axis), s, d, opts.threads);
                } else {
                    axis_image(t, axis, s, d);
                }
            }
            Instr::FilterJoin { dst, test } => {
                let (d, s) = pair_mut(regs, dst, test);
                if opts.threads > 1 {
                    twx_frontier::par_intersect(d, s, opts.threads);
                } else {
                    d.intersect_with(s);
                }
            }
            Instr::Star {
                dst,
                src,
                frontier,
                step,
                body,
            } => {
                // Single-axis closures (`a*` bodies compile to exactly
                // one AxisImage) dispatch to the frontier fixpoint
                // kernel when parallel: a hybrid sparse/dense frontier
                // carried across iterations instead of dense passes.
                // Counter accounting matches the generic loop: one
                // closure iteration and one body instruction per pass.
                if opts.threads > 1 {
                    if let [Instr::AxisImage {
                        dst: bd,
                        src: bs,
                        axis,
                    }] = prog.blocks[body as usize][..]
                    {
                        if bd == step && bs == frontier {
                            let (out, iters) = twx_frontier::star(
                                t,
                                step_of(axis),
                                &regs[src as usize],
                                opts.threads,
                            );
                            regs[dst as usize] = out;
                            stats.closure_iters += iters;
                            stats.instrs += iters;
                            continue;
                        }
                    }
                }
                {
                    let (d, s) = pair_mut(regs, dst, src);
                    d.copy_from(s);
                }
                {
                    let (f, s) = pair_mut(regs, frontier, src);
                    f.copy_from(s);
                }
                while !regs[frontier as usize].is_empty() {
                    stats.closure_iters += 1;
                    exec_block(prog, body as usize, t, ctx, regs, arena, stats, opts);
                    // fold the newly reached nodes into the accumulator;
                    // the difference doubles as the fixpoint test
                    {
                        let (s, d) = pair_mut(regs, step, dst);
                        s.difference_with(d);
                    }
                    if regs[step as usize].is_empty() {
                        break;
                    }
                    {
                        let (d, s) = pair_mut(regs, dst, step);
                        d.union_with(s);
                    }
                    regs.swap(frontier as usize, step as usize);
                }
            }
            Instr::Within { dst, sub } => {
                let nested = &prog.subs[sub as usize];
                let d = &mut regs[dst as usize];
                d.reset(n);
                for v in t.nodes() {
                    obs::incr(Counter::SubtreeExtractions);
                    let subtree = t.subtree(v);
                    let set = run(nested, &subtree, None, arena, stats, opts);
                    if set.contains(subtree.root()) {
                        d.insert(v);
                    }
                    arena.put_back(vec![set]);
                }
            }
        }
    }
}

/// Maps a query axis onto the tree-substrate step the frontier kernels
/// speak (`twx-xtree` cannot depend on the query AST).
fn step_of(axis: Axis) -> twx_frontier::Step {
    match axis {
        Axis::Down => twx_frontier::Step::Down,
        Axis::Up => twx_frontier::Step::Up,
        Axis::Left => twx_frontier::Step::Left,
        Axis::Right => twx_frontier::Step::Right,
    }
}

/// `dst ← { u : ∃ v ∈ src, v -axis→ u }`, overwriting `dst`.
fn axis_image(t: &Tree, axis: Axis, src: &NodeSet, dst: &mut NodeSet) {
    dst.reset(t.len());
    match axis {
        Axis::Down => {
            for v in src.iter() {
                let mut c = t.first_child(v);
                while let Some(u) = c {
                    dst.insert(u);
                    c = t.next_sibling(u);
                }
            }
        }
        Axis::Up => {
            for v in src.iter() {
                if let Some(p) = t.parent(v) {
                    dst.insert(p);
                }
            }
        }
        Axis::Left => {
            for v in src.iter() {
                if let Some(p) = t.prev_sibling(v) {
                    dst.insert(p);
                }
            }
        }
        Axis::Right => {
            for v in src.iter() {
                if let Some(s) = t.next_sibling(v) {
                    dst.insert(s);
                }
            }
        }
    }
}

/// Disjoint mutable/shared access to two registers of the file.
fn pair_mut(regs: &mut [NodeSet], a: Reg, b: Reg) -> (&mut NodeSet, &NodeSet) {
    let (a, b) = (a as usize, b as usize);
    debug_assert_ne!(a, b, "vm: aliased register operands");
    if a < b {
        let (lo, hi) = regs.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = regs.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_node, compile_path};
    use twx_regxpath::parser::{parse_rnode, parse_rpath};
    use twx_regxpath::{eval_image as product_image, eval_node};
    use twx_xtree::parse::parse_sexp;
    use twx_xtree::NodeId;

    #[test]
    fn vm_agrees_with_product_on_basics() {
        let doc = parse_sexp("(a (b d e) (c f))").unwrap();
        let t = &doc.tree;
        let mut ab = doc.alphabet.clone();
        for q in [
            "down",
            "down*",
            "down/right",
            "(up | down)*",
            "down*[b]",
            "down[<down>]*",
            "(down[b] | down/down)*",
        ] {
            let p = parse_rpath(q, &mut ab).unwrap();
            let prog = compile_path(&p);
            for v in t.nodes() {
                let ctx = NodeSet::singleton(t.len(), v);
                assert_eq!(
                    eval_image(t, &prog, &ctx),
                    product_image(t, &p, &ctx),
                    "query {q} from {v:?}"
                );
            }
        }
    }

    #[test]
    fn vm_node_programs_agree() {
        let doc = parse_sexp("(a (b d e) (c f))").unwrap();
        let t = &doc.tree;
        let mut ab = doc.alphabet.clone();
        for q in [
            "b",
            "<down*[d]>",
            "!<up>",
            "W(<up>)",
            "<down> and !<down/down>",
        ] {
            let f = parse_rnode(q, &mut ab).unwrap();
            let prog = compile_node(&f);
            assert_eq!(eval_node_set(t, &prog), eval_node(t, &f), "node expr {q}");
        }
    }

    #[test]
    fn parallel_eval_matches_sequential() {
        let doc = parse_sexp("(a (b d e (a b)) (c f (b (c d) e)))").unwrap();
        let t = &doc.tree;
        let mut ab = doc.alphabet.clone();
        for q in [
            "down*",
            "(up | down)*",
            "down*[b]/right*",
            "(down[b] | down/down)*",
        ] {
            let prog = compile_path(&parse_rpath(q, &mut ab).unwrap());
            for v in t.nodes() {
                let ctx = NodeSet::singleton(t.len(), v);
                let seq = eval_image(t, &prog, &ctx);
                for threads in [2, 4, 8] {
                    assert_eq!(
                        eval_image_opts(t, &prog, &ctx, EvalOpts::with_threads(threads)),
                        seq,
                        "query {q} from {v:?} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn arena_reuses_registers_across_evals() {
        let doc = parse_sexp("(a (b d e) (c f))").unwrap();
        let t = &doc.tree;
        let prog = compile_path(&parse_rpath("down*", &mut doc.alphabet.clone()).unwrap());
        let ctx = NodeSet::singleton(t.len(), NodeId(0));
        let _warm = eval_image(t, &prog, &ctx);
        let pooled = ARENA.with(|a| a.borrow().pooled());
        for _ in 0..10 {
            let _ = eval_image(t, &prog, &ctx);
        }
        // steady state: the pool neither grows nor shrinks across evals
        assert_eq!(ARENA.with(|a| a.borrow().pooled()), pooled);
    }
}

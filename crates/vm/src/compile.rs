//! Compiler: simplified Regular XPath(W) AST → register bytecode.
//!
//! Two emission directions mirror the two reachability directions of the
//! relational semantics:
//!
//! * `Compiler::path_image` emits `dst ← img(path, src)`;
//! * `Compiler::path_pre` emits `dst ← pre(path, src)` — every axis
//!   inverted, every `Seq` flipped — used for `⟨path⟩` (= `pre(path, ⊤)`)
//!   and exercised by `Filter` in the preimage direction.
//!
//! Node expressions are **hoisted**: `⟦φ⟧` depends only on the tree, never
//! on loop state, so its computation is always emitted into block 0 (the
//! main sequence) and `Star` bodies merely [`Instr::FilterJoin`] against the
//! precomputed register. That makes every closure iteration a pure
//! word-level pass.
//!
//! Registers come from a free list, but releases are **block-aware**
//! (`Compiler::release_in`): only registers whose last emitted use is in
//! block 0 straight-line code may be recycled. Anything touched while
//! emitting a loop body — scratch or hoisted test set — stays pinned for
//! the program's lifetime, because a later allocation could hand the same
//! register to a block-0 hoisted set that the loop reads on *every*
//! iteration, and the body's overwrite would clobber it between
//! iterations.

use crate::{Instr, Program, Reg};
use twx_obs::{self as obs, Counter};
use twx_regxpath::ast::{RNode, RPath};

/// Compiles a path expression to a program computing the forward image of
/// the context set; `Program::out` holds the answer.
pub fn compile_path(path: &RPath) -> Program {
    let mut c = Compiler::new();
    let ctx = c.alloc();
    c.emit(0, Instr::LoadCtx { dst: ctx });
    let out = c.alloc();
    c.path_image(0, path, ctx, out);
    c.finish(out)
}

/// Compiles a node expression to a program computing `⟦φ⟧` (no context
/// register; used for nested `W` programs and for tests).
pub fn compile_node(phi: &RNode) -> Program {
    let mut c = Compiler::new();
    let out = c.node_set(phi);
    c.finish(out)
}

struct Compiler {
    blocks: Vec<Vec<Instr>>,
    subs: Vec<Program>,
    n_regs: u16,
    free: Vec<Reg>,
}

impl Compiler {
    fn new() -> Compiler {
        Compiler {
            blocks: vec![Vec::new()],
            subs: Vec::new(),
            n_regs: 0,
            free: Vec::new(),
        }
    }

    fn finish(self, out: Reg) -> Program {
        let p = Program::new(self.blocks, self.subs, self.n_regs, out);
        obs::add(Counter::CompiledVmInstrs, p.n_instrs() as u64);
        p
    }

    fn alloc(&mut self) -> Reg {
        self.free.pop().unwrap_or_else(|| {
            let r = self.n_regs;
            self.n_regs = self
                .n_regs
                .checked_add(1)
                .expect("vm: register file exceeds u16");
            r
        })
    }

    fn release(&mut self, r: Reg) {
        self.free.push(r);
    }

    /// Frees `r` only when emitting at block 0. A register consumed inside
    /// a loop body is read (or overwritten-then-read) on *every* iteration;
    /// recycling it could hand the same slot to a later hoisted test set,
    /// which the next iteration's body writes would then clobber. So
    /// everything released from inside a loop body stays pinned.
    fn release_in(&mut self, block: usize, r: Reg) {
        if block == 0 {
            self.release(r);
        }
    }

    fn emit(&mut self, block: usize, i: Instr) {
        self.blocks[block].push(i);
    }

    /// Emits `dst ← img(path, src)` into `block`. Invariant: `dst ≠ src`,
    /// and the emitted code fully overwrites `dst` before reading it (so
    /// stale cross-iteration contents of scratch registers are harmless).
    fn path_image(&mut self, block: usize, path: &RPath, src: Reg, dst: Reg) {
        debug_assert_ne!(src, dst);
        match path {
            RPath::Axis(a) => self.emit(block, Instr::AxisImage { dst, src, axis: *a }),
            RPath::Eps => self.emit(block, Instr::Copy { dst, src }),
            RPath::Test(phi) => {
                let test = self.node_set(phi);
                self.emit(block, Instr::Copy { dst, src });
                self.emit(block, Instr::FilterJoin { dst, test });
                self.release_in(block, test);
            }
            RPath::Seq(_, _) => {
                // flatten the chain so a left-nested a/b/c/… ping-pongs
                // between two scratch registers instead of pinning one
                // intermediate per sequencing depth
                let mut parts = Vec::new();
                flatten_seq(path, &mut parts);
                let last = parts.len() - 1;
                let mut cur = src;
                for (i, part) in parts.iter().enumerate() {
                    let target = if i == last { dst } else { self.alloc() };
                    self.path_image(block, part, cur, target);
                    if cur != src {
                        self.release_in(block, cur);
                    }
                    cur = target;
                }
            }
            RPath::Union(a, b) => {
                self.path_image(block, a, src, dst);
                let alt = self.alloc();
                self.path_image(block, b, src, alt);
                self.emit(block, Instr::Union { dst, src: alt });
                self.release_in(block, alt);
            }
            RPath::Star(a) => {
                let frontier = self.alloc();
                let step = self.alloc();
                let body = self.blocks.len() as u16;
                self.blocks.push(Vec::new());
                self.path_image(body as usize, a, frontier, step);
                self.emit(
                    block,
                    Instr::Star {
                        dst,
                        src,
                        frontier,
                        step,
                        body,
                    },
                );
                self.release_in(block, step);
                self.release_in(block, frontier);
            }
            RPath::Filter(a, phi) => {
                self.path_image(block, a, src, dst);
                let test = self.node_set(phi);
                self.emit(block, Instr::FilterJoin { dst, test });
                self.release_in(block, test);
            }
        }
    }

    /// Emits `dst ← pre(path, src)` — nodes from which `path` reaches
    /// something in `src`. Axes invert, `Seq` flips, and `A[φ]` becomes
    /// `pre(A, src ∩ ⟦φ⟧)`.
    fn path_pre(&mut self, block: usize, path: &RPath, src: Reg, dst: Reg) {
        debug_assert_ne!(src, dst);
        match path {
            RPath::Axis(a) => self.emit(
                block,
                Instr::AxisImage {
                    dst,
                    src,
                    axis: a.inverse(),
                },
            ),
            RPath::Eps => self.emit(block, Instr::Copy { dst, src }),
            RPath::Test(phi) => {
                let test = self.node_set(phi);
                self.emit(block, Instr::Copy { dst, src });
                self.emit(block, Instr::FilterJoin { dst, test });
                self.release_in(block, test);
            }
            RPath::Seq(_, _) => {
                // as in the image direction, but the chain runs backwards
                let mut parts = Vec::new();
                flatten_seq(path, &mut parts);
                let last = parts.len() - 1;
                let mut cur = src;
                for (i, part) in parts.iter().rev().enumerate() {
                    let target = if i == last { dst } else { self.alloc() };
                    self.path_pre(block, part, cur, target);
                    if cur != src {
                        self.release_in(block, cur);
                    }
                    cur = target;
                }
            }
            RPath::Union(a, b) => {
                self.path_pre(block, a, src, dst);
                let alt = self.alloc();
                self.path_pre(block, b, src, alt);
                self.emit(block, Instr::Union { dst, src: alt });
                self.release_in(block, alt);
            }
            RPath::Star(a) => {
                let frontier = self.alloc();
                let step = self.alloc();
                let body = self.blocks.len() as u16;
                self.blocks.push(Vec::new());
                self.path_pre(body as usize, a, frontier, step);
                self.emit(
                    block,
                    Instr::Star {
                        dst,
                        src,
                        frontier,
                        step,
                        body,
                    },
                );
                self.release_in(block, step);
                self.release_in(block, frontier);
            }
            RPath::Filter(a, phi) => {
                let test = self.node_set(phi);
                let mid = self.alloc();
                self.emit(block, Instr::Copy { dst: mid, src });
                self.emit(block, Instr::FilterJoin { dst: mid, test });
                self.release_in(block, test);
                self.path_pre(block, a, mid, dst);
                self.release_in(block, mid);
            }
        }
    }

    /// Emits code computing `⟦φ⟧` into a fresh register — always into
    /// block 0, because test sets are loop-invariant (they depend only on
    /// the tree). Returns the register holding the set.
    fn node_set(&mut self, phi: &RNode) -> Reg {
        match phi {
            RNode::True => {
                let dst = self.alloc();
                self.emit(0, Instr::LoadFull { dst });
                dst
            }
            RNode::Label(l) => {
                let dst = self.alloc();
                self.emit(0, Instr::LoadLabel { dst, label: *l });
                dst
            }
            RNode::Some(a) => {
                // ⟨A⟩ = domain of the relation = pre(A, ⊤)
                let full = self.alloc();
                self.emit(0, Instr::LoadFull { dst: full });
                let dst = self.alloc();
                self.path_pre(0, a, full, dst);
                self.release(full);
                dst
            }
            RNode::Not(f) => {
                let dst = self.node_set(f);
                self.emit(0, Instr::Complement { dst });
                dst
            }
            RNode::And(f, g) => {
                let dst = self.node_set(f);
                let rhs = self.node_set(g);
                self.emit(0, Instr::Intersect { dst, src: rhs });
                self.release(rhs);
                dst
            }
            RNode::Or(f, g) => {
                let dst = self.node_set(f);
                let rhs = self.node_set(g);
                self.emit(0, Instr::Union { dst, src: rhs });
                self.release(rhs);
                dst
            }
            RNode::Within(f) => {
                let sub = self.subs.len() as u16;
                self.subs.push(compile_node(f));
                let dst = self.alloc();
                self.emit(0, Instr::Within { dst, sub });
                dst
            }
        }
    }
}

/// Collects the leaves of a left/right-nested `Seq` chain in order.
fn flatten_seq<'a>(p: &'a RPath, out: &mut Vec<&'a RPath>) {
    match p {
        RPath::Seq(a, b) => {
            flatten_seq(a, out);
            flatten_seq(b, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instr;
    use twx_regxpath::parser::parse_rpath;
    use twx_xtree::Alphabet;

    fn path(s: &str) -> RPath {
        parse_rpath(s, &mut Alphabet::default()).unwrap()
    }

    #[test]
    fn tests_inside_stars_are_hoisted() {
        // down[p0]* — the p0 set must be loaded in block 0, and the loop
        // body must contain no Load instructions at all.
        let p = compile_path(&path("(down[p0])*"));
        assert_eq!(p.blocks.len(), 2);
        assert!(p.blocks[0]
            .iter()
            .any(|i| matches!(i, Instr::LoadLabel { .. })));
        assert!(p.blocks[1]
            .iter()
            .all(|i| !matches!(i, Instr::LoadLabel { .. } | Instr::LoadFull { .. })));
    }

    #[test]
    fn register_file_stays_small_on_deep_seqs() {
        // a/a/a/.../a reuses the freed mid registers instead of growing
        let p = compile_path(&path("down/down/down/down/down/down/down/down"));
        assert!(p.n_regs <= 4, "free-list reuse failed: {} regs", p.n_regs);
    }

    #[test]
    fn loop_body_scratch_is_never_recycled_into_a_hoisted_set() {
        // regression: in ((right/down)[!p1])* the Seq's body-block scratch
        // used to be released and immediately reused for the hoisted ¬p1
        // set, so the first closure iteration clobbered the test. No
        // instruction in a loop body may write a register that block 0
        // loads as a test set.
        let p = compile_path(&path("((right/down)[!p1])*"));
        let mut hoisted = Vec::new();
        for i in &p.blocks[0] {
            if let Instr::LoadLabel { dst, .. } | Instr::LoadFull { dst } = i {
                hoisted.push(*dst);
            }
        }
        for body in &p.blocks[1..] {
            for i in body {
                let written = match *i {
                    Instr::AxisImage { dst, .. }
                    | Instr::Copy { dst, .. }
                    | Instr::Union { dst, .. }
                    | Instr::Intersect { dst, .. }
                    | Instr::Difference { dst, .. }
                    | Instr::Complement { dst }
                    | Instr::FilterJoin { dst, .. }
                    | Instr::LoadEmpty { dst }
                    | Instr::LoadFull { dst }
                    | Instr::LoadLabel { dst, .. }
                    | Instr::LoadCtx { dst }
                    | Instr::Within { dst, .. }
                    | Instr::Star { dst, .. } => dst,
                };
                assert!(
                    !hoisted.contains(&written),
                    "body instruction {i:?} clobbers hoisted register {written}"
                );
            }
        }
    }

    #[test]
    fn within_compiles_to_nested_program() {
        let mut ab = Alphabet::default();
        let p = parse_rpath("down*[<down*[W(p0)]>]", &mut ab).unwrap();
        let prog = compile_path(&p);
        fn has_within(p: &Program) -> bool {
            !p.subs.is_empty()
                || p.blocks
                    .iter()
                    .any(|b| b.iter().any(|i| matches!(i, Instr::Within { .. })))
        }
        assert!(has_within(&prog));
    }
}

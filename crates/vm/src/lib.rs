//! # twx-vm — bytecode VM over dense bitset registers
//!
//! The third production backend: Regular XPath(W) plans compiled to a flat
//! **register machine** whose values are [`twx_xtree::NodeSet`]s — one dense word-level
//! bitset per register. Path expressions are relation-algebraic
//! compositions, so their *image semantics* maps directly onto straight-line
//! code over set registers:
//!
//! ```text
//! img(a, S)        = one tree step            → AxisImage
//! img(?φ, S)       = S ∩ ⟦φ⟧                  → FilterJoin
//! img(A/B, S)      = img(B, img(A, S))        → sequential code
//! img(A ∪ B, S)    = img(A,S) ∪ img(B,S)      → Union (in place)
//! img(A*, S)       = least fixpoint ⊇ S       → Star (frontier closure)
//! img(A[φ], S)     = img(A,S) ∩ ⟦φ⟧           → FilterJoin
//! ```
//!
//! `⟨A⟩` is the *domain* of the relation — compiled as the preimage of the
//! full set under `A` with every axis inverted and every `Seq` flipped.
//! `W φ` keeps the subtree-extraction semantics shared by every other
//! evaluator in the workspace: a nested [`Program`] run on the subtree of
//! each node ([`Instr::Within`]).
//!
//! Three properties make this the fast route:
//!
//! * **in-place word ops** — every `∪ ∩ \ ¬` is an `O(n/64)` pass over the
//!   destination register, no temporaries ([`twx_xtree::NodeSet::union_with`] and
//!   friends added for exactly this);
//! * **arena-recycled registers** — evaluation borrows a register file from
//!   a thread-local `Arena` and returns it afterwards, so a plan-cache-hot
//!   `eval_cached` loop performs no allocation at all (registers are
//!   [`twx_xtree::NodeSet::reset`], keeping their word buffers);
//! * **closure to fixpoint by change-tracking** — `Star` iterates
//!   `frontier → step` and stops when the difference with the accumulator
//!   is empty, a test that rides on the same word pass as the union.
//!
//! Programs carry a stable FNV-1a [`Program::fingerprint`] over their
//! instruction encoding, so they drop into the engine's `PlanCache` and
//! span-invalidated `ResultCache` like any other compiled artifact.

pub mod compile;
pub mod interp;

pub use compile::{compile_node, compile_path};
pub use interp::{eval_image, eval_image_opts, eval_node_set, eval_node_set_opts, Arena, EvalOpts};

use twx_regxpath::ast::Axis;
use twx_xtree::Label;

/// A register index into the program's register file.
pub type Reg = u16;

/// One VM instruction. Registers hold [`twx_xtree::NodeSet`]s over the
/// document's node universe; every binary operation is in place on `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// `dst ← ∅`
    LoadEmpty { dst: Reg },
    /// `dst ← all nodes`
    LoadFull { dst: Reg },
    /// `dst ← { v : label(v) = label }`
    LoadLabel { dst: Reg, label: Label },
    /// `dst ← context set` (the evaluation input; main program only)
    LoadCtx { dst: Reg },
    /// `dst ← src`
    Copy { dst: Reg, src: Reg },
    /// `dst ← dst ∪ src`
    Union { dst: Reg, src: Reg },
    /// `dst ← dst ∩ src`
    Intersect { dst: Reg, src: Reg },
    /// `dst ← dst \ src`
    Difference { dst: Reg, src: Reg },
    /// `dst ← ¬dst`
    Complement { dst: Reg },
    /// `dst ← { u : ∃ v ∈ src, v -axis→ u }` — the one-step tree move.
    AxisImage { dst: Reg, src: Reg, axis: Axis },
    /// `dst ← dst ∩ test` — the relational filter-join (`A[φ]`, `?φ`).
    /// Semantically an intersect; a distinct opcode because `test` holds a
    /// hoisted, loop-invariant node-expression set.
    FilterJoin { dst: Reg, test: Reg },
    /// Kleene-star closure to fixpoint: `dst ← src`, then repeatedly run
    /// block `body` (which computes `step ← img(A, frontier)`) and fold
    /// `step \ dst` into `dst` until nothing new appears.
    Star {
        dst: Reg,
        src: Reg,
        frontier: Reg,
        step: Reg,
        body: u16,
    },
    /// `dst ← { v : sub-program holds at the root of subtree(v) }` — the
    /// `W` (within) operator via subtree extraction, matching the product
    /// and relational evaluators node for node.
    Within { dst: Reg, sub: u16 },
}

/// A compiled register program.
///
/// `blocks[0]` is the main instruction sequence; further blocks are
/// `Star` loop bodies sharing the same register file. `subs` are nested
/// programs for `W` with their own (subtree-sized) register files.
#[derive(Clone, Debug)]
pub struct Program {
    pub blocks: Vec<Vec<Instr>>,
    pub subs: Vec<Program>,
    pub n_regs: u16,
    pub out: Reg,
    fingerprint: u64,
}

impl Program {
    pub(crate) fn new(
        blocks: Vec<Vec<Instr>>,
        subs: Vec<Program>,
        n_regs: u16,
        out: Reg,
    ) -> Program {
        let mut p = Program {
            blocks,
            subs,
            n_regs,
            out,
            fingerprint: 0,
        };
        let mut h = Fnv::new();
        p.hash_into(&mut h);
        p.fingerprint = h.finish();
        p
    }

    /// Stable 64-bit FNV-1a fingerprint of the instruction encoding
    /// (including nested sub-programs). Identical plans — even compiled in
    /// different processes — fingerprint identically, so the value is a
    /// sound plan-cache/result-cache key component.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Total instruction count across all blocks and nested programs.
    pub fn n_instrs(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum::<usize>()
            + self.subs.iter().map(Program::n_instrs).sum::<usize>()
    }

    /// Registers in this program's file plus the widest nested file.
    pub fn n_regs_total(&self) -> usize {
        self.n_regs as usize
            + self
                .subs
                .iter()
                .map(Program::n_regs_total)
                .max()
                .unwrap_or(0)
    }

    fn hash_into(&self, h: &mut Fnv) {
        h.u64(self.n_regs as u64);
        h.u64(self.out as u64);
        h.u64(self.blocks.len() as u64);
        for b in &self.blocks {
            h.u64(b.len() as u64);
            for i in b {
                i.hash_into(h);
            }
        }
        h.u64(self.subs.len() as u64);
        for s in &self.subs {
            s.hash_into(h);
        }
    }
}

impl Instr {
    fn hash_into(&self, h: &mut Fnv) {
        match *self {
            Instr::LoadEmpty { dst } => h.op(0, &[dst as u64]),
            Instr::LoadFull { dst } => h.op(1, &[dst as u64]),
            Instr::LoadLabel { dst, label } => h.op(2, &[dst as u64, label.0 as u64]),
            Instr::LoadCtx { dst } => h.op(3, &[dst as u64]),
            Instr::Copy { dst, src } => h.op(4, &[dst as u64, src as u64]),
            Instr::Union { dst, src } => h.op(5, &[dst as u64, src as u64]),
            Instr::Intersect { dst, src } => h.op(6, &[dst as u64, src as u64]),
            Instr::Difference { dst, src } => h.op(7, &[dst as u64, src as u64]),
            Instr::Complement { dst } => h.op(8, &[dst as u64]),
            Instr::AxisImage { dst, src, axis } => {
                h.op(9, &[dst as u64, src as u64, axis_code(axis)])
            }
            Instr::FilterJoin { dst, test } => h.op(10, &[dst as u64, test as u64]),
            Instr::Star {
                dst,
                src,
                frontier,
                step,
                body,
            } => h.op(
                11,
                &[
                    dst as u64,
                    src as u64,
                    frontier as u64,
                    step as u64,
                    body as u64,
                ],
            ),
            Instr::Within { dst, sub } => h.op(12, &[dst as u64, sub as u64]),
        }
    }
}

fn axis_code(a: Axis) -> u64 {
    match a {
        Axis::Down => 0,
        Axis::Up => 1,
        Axis::Left => 2,
        Axis::Right => 3,
    }
}

/// FNV-1a, 64-bit — tiny, dependency-free, and stable across platforms
/// (unlike `DefaultHasher`, whose output is unspecified between releases).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn op(&mut self, opcode: u8, operands: &[u64]) {
        self.u64(opcode as u64);
        for &v in operands {
            self.u64(v);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_regxpath::parser::parse_rpath;
    use twx_xtree::Alphabet;

    fn path(ab: &mut Alphabet, s: &str) -> twx_regxpath::RPath {
        parse_rpath(s, ab).unwrap()
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        // one shared alphabet: p0 and p1 must intern to distinct labels
        let mut ab = Alphabet::default();
        let a = compile_path(&path(&mut ab, "down*[p0]"));
        let b = compile_path(&path(&mut ab, "down*[p0]"));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = compile_path(&path(&mut ab, "down*[p1]"));
        assert_ne!(a.fingerprint(), c.fingerprint(), "labels must be hashed");
        let d = compile_path(&path(&mut ab, "up*[p0]"));
        assert_ne!(a.fingerprint(), d.fingerprint(), "axes must be hashed");
    }

    #[test]
    fn program_reports_sizes() {
        let p = compile_path(&path(&mut Alphabet::default(), "(down | right)*[p0]"));
        assert!(p.n_instrs() >= 5);
        assert!(p.n_regs >= 3);
        assert!(p.blocks.len() >= 2, "a star compiles to a loop body block");
    }
}

//! # twx-frontier — parallel push/pull frontier kernels
//!
//! The paper's evaluation strategy for Regular XPath(W) is iterated
//! images of the four step relations; a Kleene star is a frontier
//! fixpoint over them. This crate parallelises exactly those two
//! primitives over chunks of the preorder id space with
//! `std::thread::scope` — zero dependencies, work split by **node
//! count** (frontier cardinality for push, universe size for pull),
//! not by chunk count.
//!
//! * [`axis_image_into`] — one step image of a dense register, the
//!   parallel path behind the VM's `AxisImage` instruction. Direction
//!   is chosen by frontier density: **push** (iterate the frontier,
//!   insert successors into per-worker sets, merge) when the frontier
//!   is small, **pull** (scan candidate ids, probe predecessors, write
//!   disjoint word ranges of the output — no merge) when it covers at
//!   least a quarter of the universe. Each image ticks
//!   `frontier_push_steps` or `frontier_pull_steps`.
//! * [`star`] — the single-axis closure fixpoint the VM's `Star`
//!   instruction dispatches to: a hybrid [`Frontier`] carried across
//!   iterations, sparse↔dense switches counted in `frontier_switches`.
//! * [`par_intersect`] — word-chunked `∩=` behind `FilterJoin`.
//!
//! Chunk counts collapse to 1 below a work grain, so tiny documents
//! take the same code path without spawning threads; at `threads == 1`
//! callers should use their sequential path instead (the VM does — its
//! one-thread evaluation is byte-identical to the pre-parallel code).
//!
//! A thread-local [`FrontierFault`] hook (`drop-chunk`: silently skip
//! the last chunk of every image) lets the conformance harness prove a
//! broken chunk merge would be caught and shrunk; it is never set
//! outside tests.

use std::cell::Cell;

use twx_obs::{self as obs, Counter};
use twx_xtree::frontier::{
    balanced_cuts, dense_threshold, pull_image_words, push_image_ids, push_image_set_range,
    word_chunks,
};
use twx_xtree::{NodeId, NodeSet, Tree};

pub use twx_xtree::frontier::{Frontier, Step};

/// Minimum frontier nodes per push chunk; below `2×` this a single
/// sequential chunk is used.
pub const PUSH_GRAIN: usize = 128;
/// Minimum candidate ids per pull chunk.
pub const PULL_GRAIN: usize = 1024;
/// Minimum words per chunk for the parallel set operations. Word-wise
/// `∩` is so cheap that spawning pays only on multi-million-node sets.
pub const SETOP_GRAIN_WORDS: usize = 1 << 16;

/// A deliberate, test-only corruption of the parallel kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontierFault {
    /// Silently drop the last chunk of every axis image — the result a
    /// broken chunk split or merge would produce.
    DropChunk,
}

impl FrontierFault {
    /// Parses the `--fault frontier=<kind>` suffix.
    pub fn parse(kind: &str) -> Option<FrontierFault> {
        match kind {
            "drop-chunk" => Some(FrontierFault::DropChunk),
            _ => None,
        }
    }
}

thread_local! {
    static FAULT: Cell<Option<FrontierFault>> = const { Cell::new(None) };
}

/// Arms (or disarms, with `None`) the fault hook on this thread. The
/// conformance harness wraps exactly one route's evaluations with it.
pub fn set_fault(f: Option<FrontierFault>) {
    FAULT.with(|c| c.set(f));
}

/// The currently armed fault, if any.
pub fn fault() -> Option<FrontierFault> {
    FAULT.with(|c| c.get())
}

/// `min(threads, ⌈work/grain⌉)`, at least 1: how many chunks a kernel
/// actually splits into. Small inputs collapse to one chunk evaluated
/// inline on the calling thread.
fn chunk_count(work: usize, grain: usize, threads: usize) -> usize {
    if threads <= 1 || work == 0 {
        1
    } else {
        threads.min(work.div_ceil(grain)).max(1)
    }
}

/// The source of one image, as the kernels consume it.
enum View<'a> {
    /// Sorted frontier ids (sparse).
    Ids(&'a [NodeId]),
    /// A dense bitmap.
    Dense(&'a NodeSet),
}

/// `dst ← { u : ∃ v ∈ src, v -step→ u }` over the whole universe,
/// choosing push or pull by the density of `src` and splitting the work
/// across at most `threads` scoped workers. `dst` is overwritten.
pub fn axis_image_into(t: &Tree, step: Step, src: &NodeSet, dst: &mut NodeSet, threads: usize) {
    let card = src.count_ones();
    let scratch;
    let view = if card <= dense_threshold(t.len()) {
        scratch = src.to_vec();
        View::Ids(&scratch)
    } else {
        View::Dense(src)
    };
    image_core(t, step, &view, card, dst, threads);
}

/// Frontier-typed image: same kernel, but sparse frontiers skip the id
/// extraction and the result keeps the hysteresis rule applied against
/// `src`'s representation.
pub fn axis_image(t: &Tree, step: Step, src: &Frontier, threads: usize) -> Frontier {
    let mut out = NodeSet::empty(t.len());
    let view = match src.sparse_ids() {
        Some(ids) => View::Ids(ids),
        None => View::Dense(src.dense_set().expect("dense when not sparse")),
    };
    image_core(t, step, &view, src.len(), &mut out, threads);
    Frontier::from_nodeset_with_hysteresis(&out, src.is_dense())
}

fn image_core(
    t: &Tree,
    step: Step,
    src: &View<'_>,
    card: usize,
    dst: &mut NodeSet,
    threads: usize,
) {
    let n = t.len();
    dst.reset(n);
    let dropped = fault() == Some(FrontierFault::DropChunk);
    // Pull pays only when most candidate probes hit: a quarter of the
    // universe live is the break-even observed in E14.
    let pull = card * 4 >= n && n > 0;
    if pull {
        obs::incr(Counter::FrontierPullSteps);
        let ranges = word_chunks(n, chunk_count(n, PULL_GRAIN, threads));
        let in_src = |v: NodeId| match src {
            View::Ids(ids) => ids.binary_search(&v).is_ok(),
            View::Dense(s) => s.contains(v),
        };
        let live = ranges.len() - usize::from(dropped);
        if live == 0 {
            return;
        }
        if ranges.len() == 1 {
            pull_image_words(t, step, in_src, 0..n, dst.words_mut());
            return;
        }
        std::thread::scope(|s| {
            let mut rest = dst.words_mut();
            for r in &ranges[..live] {
                let take = r.end.div_ceil(64) - r.start / 64;
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let r = r.clone();
                s.spawn(move || pull_image_words(t, step, in_src, r, head));
            }
        });
    } else {
        obs::incr(Counter::FrontierPushSteps);
        match src {
            View::Ids(ids) => {
                let chunks = chunk_count(ids.len(), PUSH_GRAIN, threads);
                let live = chunks - usize::from(dropped);
                if live == 0 || ids.is_empty() {
                    return;
                }
                if chunks == 1 {
                    push_image_ids(t, step, ids, dst);
                    return;
                }
                let per = ids.len().div_ceil(chunks);
                let slices: Vec<&[NodeId]> = ids.chunks(per).take(live).collect();
                merge_push(t, dst, slices, |t, part, out| {
                    push_image_ids(t, step, part, out);
                });
            }
            View::Dense(set) => {
                let chunks = chunk_count(card, PUSH_GRAIN, threads);
                let cuts = balanced_cuts(set, chunks);
                let live = cuts.len() - usize::from(dropped);
                if live == 0 {
                    return;
                }
                if cuts.len() == 1 {
                    push_image_set_range(t, step, set, cuts[0].clone(), dst);
                    return;
                }
                merge_push(
                    t,
                    dst,
                    cuts.into_iter().take(live).collect(),
                    |t, r, out| {
                        push_image_set_range(t, step, set, r, out);
                    },
                );
            }
        }
    }
}

/// Runs `work` on every part in its own scoped worker with a private
/// output set, then ORs the workers' sets into `dst`.
fn merge_push<P: Send>(
    t: &Tree,
    dst: &mut NodeSet,
    parts: Vec<P>,
    work: impl Fn(&Tree, P, &mut NodeSet) + Sync,
) {
    let n = t.len();
    let work = &work;
    let locals: Vec<NodeSet> = std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|p| {
                s.spawn(move || {
                    let mut out = NodeSet::empty(n);
                    work(t, p, &mut out);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("frontier worker"))
            .collect()
    });
    for l in &locals {
        dst.union_with(l);
    }
}

/// The single-axis star fixpoint: `src ∪ step⁺(src)` as a BFS over
/// hybrid frontiers. Returns the closure and the number of frontier
/// passes (matching the VM's per-iteration accounting: the final,
/// unproductive pass is counted too).
pub fn star(t: &Tree, step: Step, src: &NodeSet, threads: usize) -> (NodeSet, u64) {
    let mut dst = src.clone();
    let mut front = Frontier::from_nodeset(src);
    let mut iters = 0u64;
    while !front.is_empty() {
        iters += 1;
        let prev_dense = front.is_dense();
        let mut img = axis_image(t, step, &front, threads).to_nodeset();
        img.difference_with(&dst);
        if img.is_empty() {
            break;
        }
        dst.union_with(&img);
        front = Frontier::from_nodeset_with_hysteresis(&img, prev_dense);
        if front.is_dense() != prev_dense {
            obs::incr(Counter::FrontierSwitches);
        }
    }
    (dst, iters)
}

/// Word-chunked `dst ∩= other` (the `FilterJoin` parallel path). Falls
/// back to the sequential word loop below [`SETOP_GRAIN_WORDS`].
pub fn par_intersect(dst: &mut NodeSet, other: &NodeSet, threads: usize) {
    let words = dst.as_words().len();
    par_intersect_chunked(dst, other, chunk_count(words, SETOP_GRAIN_WORDS, threads));
}

/// [`par_intersect`] with an explicit chunk count (exposed so tests can
/// force multi-chunk execution on small sets).
pub fn par_intersect_chunked(dst: &mut NodeSet, other: &NodeSet, chunks: usize) {
    assert_eq!(dst.universe(), other.universe());
    if chunks <= 1 {
        dst.intersect_with(other);
        return;
    }
    let n_words = dst.as_words().len();
    let per = n_words.div_ceil(chunks).max(1);
    std::thread::scope(|s| {
        let mut rest = dst.words_mut();
        let mut base = 0;
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let src = &other.as_words()[base..base + take];
            base += take;
            s.spawn(move || {
                for (d, o) in head.iter_mut().zip(src) {
                    *d &= *o;
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::frontier;
    use twx_xtree::generate::{random_document_in, Shape};
    use twx_xtree::rng::{Rng, SplitMix64};
    use twx_xtree::Catalog;

    fn doc(n: usize, seed: u64) -> twx_xtree::Document {
        let catalog = Catalog::new();
        for l in ["a", "b", "c"] {
            catalog.intern(l);
        }
        let mut rng = SplitMix64::seed_from_u64(seed);
        random_document_in(Shape::DocumentLike, n, &catalog, &mut rng)
    }

    #[test]
    fn parallel_image_matches_sequential_all_steps() {
        let d = doc(5000, 7);
        let t = &d.tree;
        let mut rng = SplitMix64::seed_from_u64(8);
        for round in 0..6 {
            // densities from a few nodes to most of the universe
            let keep = 1 + (round * round * 7) % 64;
            let src = NodeSet::from_iter(
                t.len(),
                t.nodes().filter(|_| (rng.next_u64() % 64) < keep as u64),
            );
            let f = Frontier::from_nodeset(&src);
            for step in Step::ALL {
                let expect = frontier::axis_image_seq(t, step, &f);
                for threads in [1, 2, 4, 8] {
                    let mut got = NodeSet::empty(t.len());
                    axis_image_into(t, step, &src, &mut got, threads);
                    assert_eq!(got, expect, "step {} threads {threads}", step.name());
                    let via_frontier = axis_image(t, step, &f, threads);
                    assert_eq!(via_frontier.to_nodeset(), expect);
                }
            }
        }
    }

    #[test]
    fn star_matches_naive_closure() {
        let d = doc(3000, 11);
        let t = &d.tree;
        let src = NodeSet::singleton(t.len(), t.root());
        for step in Step::ALL {
            // naive: iterate images until no growth
            let mut expect = src.clone();
            loop {
                let f = Frontier::from_nodeset(&expect);
                let img = frontier::axis_image_seq(t, step, &f);
                if !expect.union_with_changed(&img) {
                    break;
                }
            }
            for threads in [1, 2, 4] {
                let (got, iters) = star(t, step, &src, threads);
                assert_eq!(got, expect, "step {} threads {threads}", step.name());
                assert!(iters >= 1);
            }
        }
    }

    #[test]
    fn drop_chunk_fault_corrupts_the_image() {
        let d = doc(2000, 3);
        let t = &d.tree;
        let src = NodeSet::full(t.len());
        let mut clean = NodeSet::empty(t.len());
        axis_image_into(t, Step::Down, &src, &mut clean, 4);
        set_fault(Some(FrontierFault::DropChunk));
        let mut faulty = NodeSet::empty(t.len());
        axis_image_into(t, Step::Down, &src, &mut faulty, 4);
        set_fault(None);
        assert_ne!(clean, faulty, "dropping a chunk must lose nodes");
        assert!(faulty.is_subset(&clean));
    }

    #[test]
    fn par_intersect_matches_sequential() {
        let mut rng = SplitMix64::seed_from_u64(21);
        let n = 10_000;
        let a0 = NodeSet::from_iter(
            n,
            (0..n as u32)
                .filter(|_| rng.next_u64().is_multiple_of(2))
                .map(NodeId),
        );
        let b = NodeSet::from_iter(
            n,
            (0..n as u32)
                .filter(|_| rng.next_u64().is_multiple_of(3))
                .map(NodeId),
        );
        let mut expect = a0.clone();
        expect.intersect_with(&b);
        for chunks in [2, 3, 8] {
            let mut got = a0.clone();
            par_intersect_chunked(&mut got, &b, chunks);
            assert_eq!(got, expect, "chunks {chunks}");
        }
    }
}

//! End-to-end store tests: persist → recover round trips, group-commit
//! semantics, and — the satellite-task corruption matrix — truncated
//! tail records, flipped checksum bytes, and stale-version snapshots,
//! each recovering to the newest consistent state (or a typed
//! [`StoreError`]) without panicking.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use twx_store::journal::JournalRecord;
use twx_store::snapshot::snapshot_file_name;
use twx_store::{Store, StoreConfig, StoreError, StoreFault};
use twx_xtree::edit::Edit;
use twx_xtree::parse::parse_sexp_catalog;
use twx_xtree::{Catalog, Document, NodeId};

/// A fresh scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("twx-store-test-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn doc(cat: &Catalog, sexp: &str) -> Document {
    parse_sexp_catalog(sexp, cat).unwrap()
}

/// Creates a 2-shard store holding doc 0 = `(a (b) (c))` on shard 0 and
/// doc 1 = `(a b)` on shard 1, snapshotted at seq 0.
fn seeded(dir: &Path, cfg: StoreConfig) -> (Store, Catalog) {
    let cat = Catalog::from_names(["a", "b", "c"]);
    let d0 = doc(&cat, "(a (b) (c))");
    let d1 = doc(&cat, "(a b)");
    let store = Store::create(dir.to_path_buf(), 2, cfg).unwrap();
    store.write_catalog(&cat).unwrap();
    store.write_snapshot(0, 0, &[(0, 0, &d0)]).unwrap();
    store.write_snapshot(1, 0, &[(1, 0, &d1)]).unwrap();
    (store, cat)
}

fn relabel_rec(cat: &Catalog, seq: u64, doc_id: u32, version: u64, name: &str) -> JournalRecord {
    JournalRecord::from_edit(
        seq,
        doc_id,
        version,
        &Edit::Relabel {
            node: NodeId(1),
            label: cat.lookup(name).unwrap(),
        },
        cat,
    )
}

#[test]
fn persist_recover_round_trip_with_journal_tail() {
    let s = Scratch::new("roundtrip");
    let (store, cat) = seeded(&s.0, StoreConfig::default());
    store.append(&relabel_rec(&cat, 1, 0, 1, "c")).unwrap();
    store.append(&relabel_rec(&cat, 2, 1, 1, "a")).unwrap();
    drop(store);

    let store = Store::open(&s.0, StoreConfig::default()).unwrap();
    let rec = store.recover().unwrap();
    assert_eq!(rec.seq, 2);
    assert_eq!(rec.report.records_replayed, 2);
    assert_eq!(rec.report.truncated_bytes, 0);
    assert_eq!(rec.shards[0][0].version, 1);
    assert_eq!(rec.shards[1][0].version, 1);
    let want0 = doc(&rec.catalog, "(a (c) (c))");
    let want1 = doc(&rec.catalog, "(a a)");
    assert_eq!(rec.shards[0][0].doc.tree, want0.tree);
    assert_eq!(rec.shards[1][0].doc.tree, want1.tree);
}

#[test]
fn truncated_tail_record_recovers_the_valid_prefix() {
    let s = Scratch::new("torn");
    let (store, cat) = seeded(&s.0, StoreConfig::default());
    store.append(&relabel_rec(&cat, 1, 0, 1, "c")).unwrap();
    store.append(&relabel_rec(&cat, 2, 0, 2, "b")).unwrap();
    drop(store);

    // tear the last record in half by hand
    let jpath = s.0.join("journal.log");
    let bytes = fs::read(&jpath).unwrap();
    fs::write(&jpath, &bytes[..bytes.len() - 7]).unwrap();

    let store = Store::open(&s.0, StoreConfig::default()).unwrap();
    let rec = store.recover().unwrap();
    assert_eq!(rec.report.records_replayed, 1, "only the intact record");
    assert_eq!(rec.report.truncated_bytes as usize, {
        let one = relabel_rec(&cat, 2, 0, 2, "b").encode().len();
        one - 7
    });
    assert!(rec.report.torn_reason.is_some());
    assert_eq!(rec.seq, 1);
    assert_eq!(rec.shards[0][0].version, 1);
    // the torn tail was physically truncated: appends after recovery
    // extend a valid prefix
    store.append(&relabel_rec(&cat, 2, 0, 2, "b")).unwrap();
    drop(store);
    let store = Store::open(&s.0, StoreConfig::default()).unwrap();
    let rec = store.recover().unwrap();
    assert_eq!(rec.report.records_replayed, 2);
    assert_eq!(rec.shards[0][0].version, 2);
}

#[test]
fn flipped_checksum_byte_stops_at_newest_consistent_state() {
    let s = Scratch::new("flip");
    let (store, cat) = seeded(&s.0, StoreConfig::default());
    for seq in 1..=3 {
        store
            .append(&relabel_rec(
                &cat,
                seq,
                0,
                seq,
                if seq % 2 == 0 { "b" } else { "c" },
            ))
            .unwrap();
    }
    drop(store);

    let jpath = s.0.join("journal.log");
    let mut bytes = fs::read(&jpath).unwrap();
    let rec_len = relabel_rec(&cat, 1, 0, 1, "c").encode().len();
    // flip one byte inside the second record's payload
    bytes[rec_len + 12 + 3] ^= 0x20;
    fs::write(&jpath, &bytes).unwrap();

    let store = Store::open(&s.0, StoreConfig::default()).unwrap();
    let rec = store.recover().unwrap();
    assert_eq!(rec.report.records_replayed, 1);
    assert_eq!(
        rec.report.torn_reason.as_deref(),
        Some("record checksum mismatch")
    );
    assert_eq!(rec.shards[0][0].version, 1);
    assert_eq!(rec.seq, 1);
}

#[test]
fn stale_version_snapshot_falls_back_and_replays_forward() {
    let s = Scratch::new("stale");
    let (store, cat) = seeded(&s.0, StoreConfig::default());
    store.append(&relabel_rec(&cat, 1, 0, 1, "c")).unwrap();
    // a newer snapshot generation of shard 0 at seq 1…
    let d0v1 = doc(&cat, "(a (c) (c))");
    store.write_snapshot(0, 1, &[(0, 1, &d0v1)]).unwrap();
    // …that gets corrupted on disk (flip a byte in the middle)
    let newest = s.0.join(snapshot_file_name(0, 1));
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&newest, &bytes).unwrap();
    drop(store);

    let store = Store::open(&s.0, StoreConfig::default()).unwrap();
    let rec = store.recover().unwrap();
    // recovery skipped the corrupt generation, loaded the seq-0 snapshot,
    // and the journal replayed the edit back on top: no data loss
    assert_eq!(rec.report.stale_snapshots_skipped, 1);
    assert_eq!(rec.report.records_replayed, 1);
    assert_eq!(rec.shards[0][0].version, 1);
    assert_eq!(rec.shards[0][0].doc.tree, d0v1.tree);
    assert_eq!(rec.seq, 1);
}

#[test]
fn snapshot_newer_than_journal_skips_contained_records() {
    let s = Scratch::new("overlap");
    let (store, cat) = seeded(&s.0, StoreConfig::default());
    store.append(&relabel_rec(&cat, 1, 0, 1, "c")).unwrap();
    store.append(&relabel_rec(&cat, 2, 0, 2, "b")).unwrap();
    // snapshot shard 0 at seq 2 (covers both records); journal not compacted
    let d0v2 = doc(&cat, "(a (b) (c))");
    store.write_snapshot(0, 2, &[(0, 2, &d0v2)]).unwrap();
    drop(store);

    let store = Store::open(&s.0, StoreConfig::default()).unwrap();
    let rec = store.recover().unwrap();
    assert_eq!(rec.report.records_skipped, 2);
    assert_eq!(rec.report.records_replayed, 0);
    assert_eq!(rec.shards[0][0].version, 2);
    assert_eq!(rec.seq, 2);
}

#[test]
fn compaction_drops_covered_records_and_old_generations() {
    let s = Scratch::new("compact");
    let (store, cat) = seeded(&s.0, StoreConfig::default());
    store.append(&relabel_rec(&cat, 1, 0, 1, "c")).unwrap();
    store.append(&relabel_rec(&cat, 2, 0, 2, "b")).unwrap();
    let d0v2 = doc(&cat, "(a (b) (c))");
    let d1 = doc(&cat, "(a b)");
    store.write_snapshot(0, 2, &[(0, 2, &d0v2)]).unwrap();
    store.write_snapshot(1, 2, &[(1, 0, &d1)]).unwrap();
    let before = store.journal_bytes();
    let reclaimed = store.compact(2).unwrap();
    assert_eq!(reclaimed, before);
    assert_eq!(store.journal_bytes(), 0);
    // old seq-0 generations are gone; the seq-2 ones remain
    assert!(!s.0.join(snapshot_file_name(0, 0)).exists());
    assert!(!s.0.join(snapshot_file_name(1, 0)).exists());
    assert!(s.0.join(snapshot_file_name(0, 2)).exists());
    // post-compaction recovery is exact
    let rec = store.recover().unwrap();
    assert_eq!(rec.shards[0][0].version, 2);
    assert_eq!(rec.shards[0][0].doc.tree, d0v2.tree);
    assert_eq!(rec.seq, 2);
}

#[test]
fn skip_fsync_fault_loses_acknowledged_edits_on_crash() {
    let s = Scratch::new("fault");
    let cfg = StoreConfig {
        fsync_every: 1,
        fault: StoreFault::SkipFsync,
    };
    let (store, cat) = seeded(&s.0, cfg);
    // with an honest store + fsync_every=1 these two acks would be durable
    store.append(&relabel_rec(&cat, 1, 0, 1, "c")).unwrap();
    store.append(&relabel_rec(&cat, 2, 0, 2, "b")).unwrap();
    store.simulate_crash(5).unwrap(); // keep 5 bytes: a torn fragment
    assert!(matches!(
        store.append(&relabel_rec(&cat, 3, 0, 3, "c")),
        Err(StoreError::Crashed)
    ));
    drop(store);

    let store = Store::open(&s.0, StoreConfig::default()).unwrap();
    let rec = store.recover().unwrap();
    // both acknowledged edits are gone — exactly the divergence the
    // crash fuzzer exists to catch
    assert_eq!(rec.report.records_replayed, 0);
    assert_eq!(rec.report.truncated_bytes, 5);
    assert_eq!(rec.shards[0][0].version, 0);
}

#[test]
fn honest_store_with_fsync_every_1_survives_crash_exactly() {
    let s = Scratch::new("honest");
    let (store, cat) = seeded(&s.0, StoreConfig::default());
    store.append(&relabel_rec(&cat, 1, 0, 1, "c")).unwrap();
    store.simulate_crash(3).unwrap(); // nothing un-synced to tear
    drop(store);
    let store = Store::open(&s.0, StoreConfig::default()).unwrap();
    let rec = store.recover().unwrap();
    assert_eq!(rec.report.records_replayed, 1);
    assert_eq!(rec.report.truncated_bytes, 0);
    assert_eq!(rec.shards[0][0].version, 1);
}

#[test]
fn group_commit_bounds_loss_to_the_open_group() {
    let s = Scratch::new("group");
    let cfg = StoreConfig {
        fsync_every: 3,
        fault: StoreFault::None,
    };
    let (store, cat) = seeded(&s.0, cfg);
    for seq in 1..=4 {
        let name = if seq % 2 == 0 { "b" } else { "c" };
        store.append(&relabel_rec(&cat, seq, 0, seq, name)).unwrap();
    }
    // seqs 1–3 fsync'd as a group; seq 4 is in the open group
    store.simulate_crash(0).unwrap();
    drop(store);
    let store = Store::open(&s.0, StoreConfig::default()).unwrap();
    let rec = store.recover().unwrap();
    assert_eq!(rec.report.records_replayed, 3);
    assert_eq!(rec.shards[0][0].version, 3);
}

#[test]
fn journalled_labels_new_to_the_catalog_intern_on_replay() {
    let s = Scratch::new("newlabel");
    let (store, cat) = seeded(&s.0, StoreConfig::default());
    // intern a label *after* catalog.bin was written
    let fresh = cat.intern("fresh");
    let rec = JournalRecord::from_edit(
        1,
        0,
        1,
        &Edit::InsertChild {
            parent: NodeId(0),
            position: 2,
            label: fresh,
        },
        &cat,
    );
    store.append(&rec).unwrap();
    drop(store);

    let store = Store::open(&s.0, StoreConfig::default()).unwrap();
    let out = store.recover().unwrap();
    let l = out.catalog.lookup("fresh").expect("interned on replay");
    let e = &out.shards[0][0];
    assert_eq!(e.version, 1);
    assert_eq!(e.doc.tree.len(), 4);
    let last = NodeId(3);
    assert_eq!(e.doc.tree.label(last), l);
}

#[test]
fn version_gap_and_unknown_doc_are_typed_errors() {
    let s = Scratch::new("gap");
    let (store, cat) = seeded(&s.0, StoreConfig::default());
    store.append(&relabel_rec(&cat, 1, 0, 2, "c")).unwrap(); // jumps 0 → 2
    drop(store);
    let store = Store::open(&s.0, StoreConfig::default()).unwrap();
    assert!(matches!(
        store.recover(),
        Err(StoreError::VersionGap {
            doc_id: 0,
            have: 0,
            record: 2,
            ..
        })
    ));
    drop(store);

    let s2 = Scratch::new("unknown");
    let (store, cat) = seeded(&s2.0, StoreConfig::default());
    store.append(&relabel_rec(&cat, 1, 7, 1, "c")).unwrap();
    drop(store);
    let store = Store::open(&s2.0, StoreConfig::default()).unwrap();
    assert!(matches!(
        store.recover(),
        Err(StoreError::UnknownDoc { doc_id: 7, seq: 1 })
    ));
}

#[test]
fn missing_snapshot_and_corrupt_meta_are_typed_errors() {
    let s = Scratch::new("nosnap");
    let cat = Catalog::from_names(["a"]);
    let store = Store::create(s.0.clone(), 1, StoreConfig::default()).unwrap();
    store.write_catalog(&cat).unwrap();
    // no snapshot ever written for shard 0
    assert!(matches!(
        store.recover(),
        Err(StoreError::NoSnapshot { shard: 0 })
    ));
    drop(store);

    // corrupt meta: open() refuses with a typed error, no panic
    let meta = s.0.join("meta.bin");
    let mut bytes = fs::read(&meta).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    fs::write(&meta, &bytes).unwrap();
    assert!(matches!(
        Store::open(&s.0, StoreConfig::default()),
        Err(StoreError::Corrupt { .. })
    ));
}

#[test]
fn create_refuses_to_clobber_an_existing_store() {
    let s = Scratch::new("clobber");
    let _ = seeded(&s.0, StoreConfig::default());
    assert!(matches!(
        Store::create(s.0.clone(), 2, StoreConfig::default()),
        Err(StoreError::Corrupt { .. })
    ));
    assert!(Store::exists(&s.0));
    assert!(!Store::exists(s.0.join("nope")));
}

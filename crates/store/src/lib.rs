//! # twx-store — durable corpus storage
//!
//! The persistence tier under the live corpus
//! (`twx-corpus`): compact per-shard **snapshots**, an append-only
//! **edit journal**, and **crash recovery** that reconstructs the exact
//! pre-crash shard states.
//!
//! A store is a directory:
//!
//! ```text
//! store/
//!   meta.bin                  shard count (checksummed header)
//!   catalog.bin               the shared label space, name per line id
//!   journal.log               checksummed, length-prefixed edit records
//!   shard-0000-<seq16>.snap   newest snapshot of shard 0 …
//!   shard-0001-<seq16>.snap   … one file per shard per generation
//! ```
//!
//! * **Snapshots** ([`snapshot`]) store tree shape as a
//!   balanced-parentheses bitvector (2 bits/node) and labels as packed
//!   indices into a per-document palette of catalog ids — a fraction of
//!   a byte per node against the 28-byte in-memory arena node. Every
//!   section is FNV-1a checksummed; a snapshot either decodes exactly or
//!   fails with a typed [`StoreError`].
//! * **The journal** ([`journal`]) records every committed edit with its
//!   commit sequence number and post-edit version, fsync'd on a
//!   configurable group-commit interval ([`StoreConfig::fsync_every`]).
//!   Labels travel by name so replay interns them idempotently.
//! * **Recovery** ([`Store::recover`]) loads the newest *valid* snapshot
//!   per shard (falling back past corrupt generations), truncates any
//!   torn journal tail, replays the surviving records in sequence order,
//!   and returns fully reconstructed shard contents with versions and
//!   the global commit sequence intact.
//!
//! The deliberate [`StoreFault::SkipFsync`] hook acknowledges appends
//! without making them durable — the crash-recovery fuzzer
//! (`twx-fuzz --crash`) uses it to prove that the conformance oracle
//! catches lost-ack divergence, and [`Store::simulate_crash`] models the
//! kernel dropping the un-synced tail (cut mid-record to exercise torn
//! truncation).

pub mod journal;
pub mod snapshot;
pub mod wire;

use journal::JournalRecord;
use snapshot::SnapshotDoc;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use twx_xtree::edit::{apply_edit, EditError};
use twx_xtree::{BpError, Catalog, Document};

/// File magic for `meta.bin`.
const META_MAGIC: &[u8; 8] = b"TWXMETA1";
/// File magic for `catalog.bin`.
const CATALOG_MAGIC: &[u8; 8] = b"TWXCATL1";
/// Store format version shared by meta and catalog files.
const STORE_FORMAT: u32 = 1;

/// Why a store operation failed. Corruption is always a typed error —
/// recovery never panics on bad bytes and never silently half-loads.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem error, with the path it hit.
    Io {
        /// What the store was doing.
        what: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A file failed validation (magic, checksum, framing, or an
    /// impossible value).
    Corrupt {
        /// Which structure was being decoded.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A shard has no loadable snapshot at all.
    NoSnapshot {
        /// The shard in question.
        shard: u32,
    },
    /// A journal record names a document no snapshot contains.
    UnknownDoc {
        /// The record's document id.
        doc_id: u32,
        /// The record's commit sequence.
        seq: u64,
    },
    /// A journal record's version does not chain onto the recovered
    /// document (`post_version > have + 1`): an intermediate edit is
    /// missing, so replaying would silently corrupt the document.
    VersionGap {
        /// The document.
        doc_id: u32,
        /// The version recovery currently has.
        have: u64,
        /// The record's post-edit version.
        record: u64,
        /// The record's commit sequence.
        seq: u64,
    },
    /// A journalled edit failed to re-apply during replay.
    Replay {
        /// The record's commit sequence.
        seq: u64,
        /// The document.
        doc_id: u32,
        /// The underlying edit error.
        source: EditError,
    },
    /// A snapshot's structure bitvector failed to decode.
    Bp(BpError),
    /// The store was crashed by [`Store::simulate_crash`] and rejects
    /// further writes.
    Crashed,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { what, path, source } => {
                write!(f, "{what}: {}: {source}", path.display())
            }
            StoreError::Corrupt { what, detail } => write!(f, "corrupt {what}: {detail}"),
            StoreError::NoSnapshot { shard } => {
                write!(f, "shard {shard} has no loadable snapshot")
            }
            StoreError::UnknownDoc { doc_id, seq } => {
                write!(f, "journal record seq {seq} names unknown doc {doc_id}")
            }
            StoreError::VersionGap {
                doc_id,
                have,
                record,
                seq,
            } => write!(
                f,
                "journal record seq {seq} for doc {doc_id} jumps to version {record} \
                 but recovery has version {have}"
            ),
            StoreError::Replay {
                seq,
                doc_id,
                source,
            } => write!(f, "replay of seq {seq} on doc {doc_id} failed: {source}"),
            StoreError::Bp(e) => write!(f, "corrupt structure bits: {e}"),
            StoreError::Crashed => write!(f, "store has been crashed (simulate_crash)"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Replay { source, .. } => Some(source),
            StoreError::Bp(e) => Some(e),
            _ => None,
        }
    }
}

/// Injected misbehaviour for crash testing (see the crate docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreFault {
    /// Honest operation.
    #[default]
    None,
    /// Acknowledge journal appends without ever fsyncing them: a crash
    /// then loses acknowledged edits — the divergence the crash fuzzer
    /// must catch.
    SkipFsync,
}

impl StoreFault {
    /// Parses the `--fault store=…` forms used by `twx-fuzz`.
    pub fn parse(s: &str) -> Option<StoreFault> {
        match s {
            "store=skip-fsync" => Some(StoreFault::SkipFsync),
            _ => None,
        }
    }

    /// Stable name for JSON summaries; the inverse of [`StoreFault::parse`]
    /// for the non-`None` variants.
    pub fn name(self) -> &'static str {
        match self {
            StoreFault::None => "none",
            StoreFault::SkipFsync => "store=skip-fsync",
        }
    }
}

/// Store tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// Group-commit interval: fsync the journal after every `n`
    /// appends. `1` makes every acknowledged edit durable; larger
    /// values trade a bounded window of loss for throughput.
    pub fsync_every: u64,
    /// Injected fault, [`StoreFault::None`] in production.
    pub fault: StoreFault,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            fsync_every: 1,
            fault: StoreFault::None,
        }
    }
}

/// What recovery did, for logs, metrics, and the crash fuzzer.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Snapshot generations that failed validation and were skipped.
    pub stale_snapshots_skipped: usize,
    /// Journal records applied onto snapshots.
    pub records_replayed: usize,
    /// Journal records already contained in a snapshot (skipped).
    pub records_skipped: usize,
    /// Torn journal bytes truncated.
    pub truncated_bytes: u64,
    /// Why the journal scan stopped early, if it did.
    pub torn_reason: Option<String>,
    /// Wall-clock nanoseconds the whole recovery took.
    pub recovery_ns: u64,
}

/// A fully recovered store: everything `twx-corpus` needs to rebuild a
/// live `Corpus` with versions, placement, and sequence intact.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered shared label space (snapshot palette ids resolve
    /// against it; journal label names have been interned into it).
    pub catalog: Arc<Catalog>,
    /// Per shard, the documents in entry order, post-replay. The outer
    /// index is the shard id; the inner order is the exact pre-crash
    /// placement.
    pub shards: Vec<Vec<SnapshotDoc>>,
    /// The recovered global commit sequence.
    pub seq: u64,
    /// What happened along the way.
    pub report: RecoveryReport,
}

#[derive(Debug)]
struct JournalState {
    file: File,
    /// Bytes written (durable or not).
    len: u64,
    /// Bytes known fsync'd.
    durable_len: u64,
    /// Appends since the last fsync.
    pending: u64,
    /// Set by [`Store::simulate_crash`]; all writes refuse afterwards.
    crashed: bool,
}

#[cfg(feature = "obs")]
struct Meters {
    journal_bytes: Arc<twx_obs::metrics::Gauge>,
    snapshot_bytes: Arc<twx_obs::metrics::Gauge>,
    fsync_ns: Arc<twx_obs::AtomicHistogram>,
    recovery_ns: Arc<twx_obs::AtomicHistogram>,
}

#[cfg(feature = "obs")]
impl Meters {
    fn new() -> Meters {
        let reg = twx_obs::metrics::global();
        Meters {
            journal_bytes: reg.gauge("twx_store_journal_bytes", &[]),
            snapshot_bytes: reg.gauge("twx_store_snapshot_bytes", &[]),
            fsync_ns: reg.histogram("twx_store_fsync_ns", &[]),
            recovery_ns: reg.histogram("twx_store_recovery_ns", &[]),
        }
    }
}

/// A handle on one store directory (see the crate docs).
pub struct Store {
    dir: PathBuf,
    cfg: StoreConfig,
    n_shards: u32,
    journal: Mutex<JournalState>,
    #[cfg(feature = "obs")]
    meters: Meters,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("cfg", &self.cfg)
            .field("n_shards", &self.n_shards)
            .finish()
    }
}

fn io_err<'a>(
    what: &'static str,
    path: &'a Path,
) -> impl FnOnce(std::io::Error) -> StoreError + 'a {
    move |source| StoreError::Io {
        what,
        path: path.to_path_buf(),
        source,
    }
}

impl Store {
    /// Whether `dir` already holds a store (checked by marker file, not
    /// validated — recovery does the validation).
    pub fn exists(dir: impl AsRef<Path>) -> bool {
        dir.as_ref().join("meta.bin").is_file()
    }

    /// Creates a fresh store for `n_shards` shards in `dir` (created if
    /// missing; must not already contain a store).
    pub fn create(
        dir: impl Into<PathBuf>,
        n_shards: u32,
        cfg: StoreConfig,
    ) -> Result<Store, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err("create store dir", &dir))?;
        let meta = dir.join("meta.bin");
        if meta.exists() {
            return Err(StoreError::Corrupt {
                what: "store directory",
                detail: format!("{} already holds a store", dir.display()),
            });
        }
        let mut e = wire::Enc::new();
        e.u32(STORE_FORMAT);
        e.u32(n_shards);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(META_MAGIC);
        bytes.extend_from_slice(&wire::fnv1a(&e.0).to_le_bytes());
        bytes.extend_from_slice(&e.0);
        write_atomic(&dir, "meta.bin", &bytes)?;
        // an empty journal, so open-for-append always succeeds later
        File::create(dir.join("journal.log"))
            .map_err(io_err("create journal", &dir.join("journal.log")))?;
        Store::open(dir, cfg)
    }

    /// Opens an existing store (or one just created).
    pub fn open(dir: impl Into<PathBuf>, cfg: StoreConfig) -> Result<Store, StoreError> {
        let dir = dir.into();
        let n_shards = read_meta(&dir)?;
        let jpath = dir.join("journal.log");
        let file = OpenOptions::new()
            .append(true)
            .open(&jpath)
            .map_err(io_err("open journal", &jpath))?;
        let len = file
            .metadata()
            .map_err(io_err("stat journal", &jpath))?
            .len();
        let store = Store {
            dir,
            cfg,
            n_shards,
            journal: Mutex::new(JournalState {
                file,
                len,
                // bytes already on disk predate this process: assume the
                // previous owner synced what it acknowledged
                durable_len: len,
                pending: 0,
                crashed: false,
            }),
            #[cfg(feature = "obs")]
            meters: Meters::new(),
        };
        store.refresh_gauges();
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured shard count.
    pub fn n_shards(&self) -> u32 {
        self.n_shards
    }

    /// Current journal length in bytes (including not-yet-synced tail).
    pub fn journal_bytes(&self) -> u64 {
        self.journal.lock().expect("journal poisoned").len
    }

    /// Journal bytes known durable (≤ [`Store::journal_bytes`]).
    pub fn durable_journal_bytes(&self) -> u64 {
        self.journal.lock().expect("journal poisoned").durable_len
    }

    /// Total bytes across current snapshot files.
    pub fn snapshot_bytes(&self) -> u64 {
        let mut total = 0;
        if let Ok(rd) = fs::read_dir(&self.dir) {
            for entry in rd.flatten() {
                let name = entry.file_name();
                if name
                    .to_str()
                    .and_then(snapshot::parse_snapshot_file_name)
                    .is_some()
                {
                    total += entry.metadata().map(|m| m.len()).unwrap_or(0);
                }
            }
        }
        total
    }

    fn refresh_gauges(&self) {
        #[cfg(feature = "obs")]
        {
            self.meters.journal_bytes.set(self.journal_bytes());
            self.meters.snapshot_bytes.set(self.snapshot_bytes());
        }
    }

    /// Appends one committed edit to the journal. Returns once the
    /// record is written; it is *durable* once the group-commit interval
    /// fsyncs (every append when `fsync_every == 1`).
    pub fn append(&self, rec: &JournalRecord) -> Result<(), StoreError> {
        let jpath = self.dir.join("journal.log");
        let mut j = self.journal.lock().expect("journal poisoned");
        if j.crashed {
            return Err(StoreError::Crashed);
        }
        let bytes = rec.encode();
        j.file
            .write_all(&bytes)
            .map_err(io_err("append journal record", &jpath))?;
        j.len += bytes.len() as u64;
        j.pending += 1;
        if j.pending >= self.cfg.fsync_every.max(1) {
            self.sync_locked(&mut j)?;
        }
        #[cfg(feature = "obs")]
        self.meters.journal_bytes.set(j.len);
        Ok(())
    }

    /// Forces the journal durable up to everything appended so far.
    pub fn sync(&self) -> Result<(), StoreError> {
        let mut j = self.journal.lock().expect("journal poisoned");
        if j.crashed {
            return Err(StoreError::Crashed);
        }
        self.sync_locked(&mut j)
    }

    fn sync_locked(&self, j: &mut JournalState) -> Result<(), StoreError> {
        j.pending = 0;
        if self.cfg.fault == StoreFault::SkipFsync {
            // the injected fault: pretend the group committed; durable_len
            // deliberately stays behind, so a simulated crash loses the tail
            return Ok(());
        }
        #[cfg(feature = "obs")]
        let t0 = Instant::now();
        j.file
            .sync_data()
            .map_err(io_err("fsync journal", &self.dir.join("journal.log")))?;
        #[cfg(feature = "obs")]
        self.meters.fsync_ns.record(t0.elapsed().as_nanos() as u64);
        j.durable_len = j.len;
        Ok(())
    }

    /// Simulates the machine dying: everything past the last real fsync
    /// is dropped, except the first `keep_unsynced` bytes of the
    /// un-synced tail (modelling a torn page flushed by the kernel at an
    /// arbitrary byte — cut it mid-record and recovery must truncate).
    /// The handle refuses all further writes; re-open the directory to
    /// recover.
    pub fn simulate_crash(&self, keep_unsynced: u64) -> Result<(), StoreError> {
        let jpath = self.dir.join("journal.log");
        let mut j = self.journal.lock().expect("journal poisoned");
        j.crashed = true;
        let keep = j.durable_len + keep_unsynced.min(j.len - j.durable_len);
        j.file
            .set_len(keep)
            .map_err(io_err("truncate journal at crash", &jpath))?;
        j.len = keep;
        Ok(())
    }

    /// Writes one shard snapshot at commit sequence `seq` (atomic:
    /// temp file + fsync + rename). Returns the snapshot's byte size.
    pub fn write_snapshot(
        &self,
        shard: u32,
        seq: u64,
        docs: &[(u32, u64, &Document)],
    ) -> Result<u64, StoreError> {
        if self.journal.lock().expect("journal poisoned").crashed {
            return Err(StoreError::Crashed);
        }
        let bytes = snapshot::encode_shard(shard, seq, docs);
        write_atomic(&self.dir, &snapshot::snapshot_file_name(shard, seq), &bytes)?;
        self.refresh_gauges();
        Ok(bytes.len() as u64)
    }

    /// Persists the current catalog (atomic replace of `catalog.bin`).
    pub fn write_catalog(&self, catalog: &Catalog) -> Result<(), StoreError> {
        let names: Vec<String> =
            catalog.with_read(|a| a.iter().map(|(_, name)| name.to_string()).collect());
        let mut e = wire::Enc::new();
        e.u32(STORE_FORMAT);
        e.u32(names.len() as u32);
        for n in &names {
            e.str(n);
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CATALOG_MAGIC);
        bytes.extend_from_slice(&wire::fnv1a(&e.0).to_le_bytes());
        bytes.extend_from_slice(&e.0);
        write_atomic(&self.dir, "catalog.bin", &bytes)
    }

    /// Drops journal records with `seq <= upto_seq` (they are covered by
    /// snapshots) and removes snapshot generations older than the newest
    /// per shard. Call only after a full successful snapshot pass at
    /// `upto_seq`. Returns the bytes reclaimed from the journal.
    pub fn compact(&self, upto_seq: u64) -> Result<u64, StoreError> {
        let jpath = self.dir.join("journal.log");
        let mut j = self.journal.lock().expect("journal poisoned");
        if j.crashed {
            return Err(StoreError::Crashed);
        }
        let mut bytes = Vec::new();
        File::open(&jpath)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(io_err("read journal for compaction", &jpath))?;
        bytes.truncate(j.len as usize);
        let scanned = journal::scan(&bytes);
        let mut kept = Vec::new();
        for rec in &scanned.records {
            if rec.seq > upto_seq {
                kept.extend_from_slice(&rec.encode());
            }
        }
        let reclaimed = (bytes.len() as u64).saturating_sub(kept.len() as u64);
        write_atomic(&self.dir, "journal.log", &kept)?;
        // the old append handle points at the unlinked inode; reopen
        j.file = OpenOptions::new()
            .append(true)
            .open(&jpath)
            .map_err(io_err("reopen journal after compaction", &jpath))?;
        j.len = kept.len() as u64;
        j.durable_len = j.len;
        j.pending = 0;
        drop(j);
        // older generations are now redundant: the newest snapshot per
        // shard plus the compacted journal reconstruct everything
        for shard in 0..self.n_shards {
            let files = snapshot::list_snapshots(&self.dir, shard)
                .map_err(io_err("list snapshots", &self.dir))?;
            for (_, path) in files.iter().skip(1) {
                let _ = fs::remove_file(path);
            }
        }
        self.refresh_gauges();
        Ok(reclaimed)
    }

    /// Recovers the whole store: newest valid snapshot per shard, torn
    /// journal tail truncated, surviving records replayed in order (see
    /// the crate docs for the exact rules).
    pub fn recover(&self) -> Result<Recovered, StoreError> {
        let t0 = Instant::now();
        let mut report = RecoveryReport::default();
        let catalog = Arc::new(read_catalog(&self.dir)?);

        // journal first: scan + physically truncate the torn tail so
        // post-recovery appends extend a valid prefix
        let jpath = self.dir.join("journal.log");
        let mut bytes = Vec::new();
        File::open(&jpath)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(io_err("read journal", &jpath))?;
        let scanned = journal::scan(&bytes);
        report.truncated_bytes = scanned.torn_bytes;
        report.torn_reason = scanned.torn_reason.clone();
        if scanned.torn_bytes > 0 {
            let mut j = self.journal.lock().expect("journal poisoned");
            j.file
                .set_len(scanned.valid_len)
                .map_err(io_err("truncate torn journal tail", &jpath))?;
            j.len = scanned.valid_len;
            j.durable_len = j.durable_len.min(scanned.valid_len);
        }
        // intern every journalled label before snapshotting the alphabet,
        // so recovered documents can carry labels newer than catalog.bin
        let edits: Vec<_> = scanned
            .records
            .iter()
            .map(|r| (r.clone(), r.to_edit(&catalog)))
            .collect();
        let alphabet = catalog.snapshot();

        // newest valid snapshot per shard, skipping corrupt generations
        let mut shards: Vec<Vec<SnapshotDoc>> = Vec::with_capacity(self.n_shards as usize);
        let mut seq = 0u64;
        for shard in 0..self.n_shards {
            let files = snapshot::list_snapshots(&self.dir, shard)
                .map_err(io_err("list snapshots", &self.dir))?;
            let mut loaded = None;
            for (file_seq, path) in &files {
                let mut buf = Vec::new();
                let ok = File::open(path)
                    .and_then(|mut f| f.read_to_end(&mut buf))
                    .is_ok();
                if !ok {
                    report.stale_snapshots_skipped += 1;
                    continue;
                }
                match snapshot::decode_shard(&buf, &alphabet) {
                    Ok(s) if s.shard == shard && s.seq == *file_seq => {
                        loaded = Some(s);
                        break;
                    }
                    _ => report.stale_snapshots_skipped += 1,
                }
            }
            let s = loaded.ok_or(StoreError::NoSnapshot { shard })?;
            seq = seq.max(s.seq);
            shards.push(s.docs);
        }

        // doc id → (shard, index): the exact persisted placement
        let mut place = std::collections::HashMap::new();
        for (si, docs) in shards.iter().enumerate() {
            for (di, d) in docs.iter().enumerate() {
                place.insert(d.doc_id, (si, di));
            }
        }

        // replay the journal tail in append (= sequence) order
        for (rec, edit) in &edits {
            seq = seq.max(rec.seq);
            let &(si, di) = place.get(&rec.doc_id).ok_or(StoreError::UnknownDoc {
                doc_id: rec.doc_id,
                seq: rec.seq,
            })?;
            let entry = &mut shards[si][di];
            if rec.post_version <= entry.version {
                report.records_skipped += 1; // already inside the snapshot
                continue;
            }
            if rec.post_version != entry.version + 1 {
                return Err(StoreError::VersionGap {
                    doc_id: rec.doc_id,
                    have: entry.version,
                    record: rec.post_version,
                    seq: rec.seq,
                });
            }
            let (tree, _span) =
                apply_edit(&entry.doc.tree, edit).map_err(|source| StoreError::Replay {
                    seq: rec.seq,
                    doc_id: rec.doc_id,
                    source,
                })?;
            entry.doc = Document::new(tree, alphabet.clone());
            entry.version = rec.post_version;
            report.records_replayed += 1;
        }

        report.recovery_ns = t0.elapsed().as_nanos() as u64;
        #[cfg(feature = "obs")]
        self.meters.recovery_ns.record(report.recovery_ns);
        self.refresh_gauges();
        Ok(Recovered {
            catalog,
            shards,
            seq,
            report,
        })
    }
}

/// Writes `bytes` to `dir/name` atomically: temp file, fsync, rename,
/// best-effort directory fsync.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let dst = dir.join(name);
    let mut f = File::create(&tmp).map_err(io_err("create temp file", &tmp))?;
    f.write_all(bytes)
        .map_err(io_err("write temp file", &tmp))?;
    f.sync_data().map_err(io_err("fsync temp file", &tmp))?;
    drop(f);
    fs::rename(&tmp, &dst).map_err(io_err("rename into place", &dst))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn read_meta(dir: &Path) -> Result<u32, StoreError> {
    let path = dir.join("meta.bin");
    let bytes = fs::read(&path).map_err(io_err("read meta", &path))?;
    let corrupt = |detail: String| StoreError::Corrupt {
        what: "meta file",
        detail,
    };
    if bytes.len() < 16 || &bytes[..8] != META_MAGIC {
        return Err(corrupt("bad magic or length".to_string()));
    }
    let want = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let payload = &bytes[16..];
    if wire::fnv1a(payload) != want {
        return Err(corrupt("checksum mismatch".to_string()));
    }
    let mut d = wire::Dec::new(payload);
    let format = d.u32().map_err(|e| corrupt(e.to_string()))?;
    if format != STORE_FORMAT {
        return Err(corrupt(format!("unsupported format version {format}")));
    }
    let n_shards = d.u32().map_err(|e| corrupt(e.to_string()))?;
    if n_shards == 0 {
        return Err(corrupt("zero shards".to_string()));
    }
    Ok(n_shards)
}

fn read_catalog(dir: &Path) -> Result<Catalog, StoreError> {
    let path = dir.join("catalog.bin");
    let bytes = fs::read(&path).map_err(io_err("read catalog", &path))?;
    let corrupt = |detail: String| StoreError::Corrupt {
        what: "catalog file",
        detail,
    };
    if bytes.len() < 16 || &bytes[..8] != CATALOG_MAGIC {
        return Err(corrupt("bad magic or length".to_string()));
    }
    let want = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let payload = &bytes[16..];
    if wire::fnv1a(payload) != want {
        return Err(corrupt("checksum mismatch".to_string()));
    }
    let mut d = wire::Dec::new(payload);
    let mut err = |e: wire::WireError| corrupt(e.to_string());
    let format = d.u32().map_err(&mut err)?;
    if format != STORE_FORMAT {
        return Err(corrupt(format!("unsupported format version {format}")));
    }
    let n = d.u32().map_err(&mut err)? as usize;
    let mut names = Vec::with_capacity(n.min(bytes.len() / 4 + 1));
    for _ in 0..n {
        names.push(d.str().map_err(&mut err)?);
    }
    Ok(Catalog::from_names(names))
}

//! The compact per-shard snapshot format.
//!
//! One snapshot file holds one shard's documents at one commit sequence
//! number. The layout (all integers little-endian):
//!
//! ```text
//! magic      8 B   b"TWXSNAP1"
//! format     4 B   u32, currently 1
//! shard      4 B   u32 shard id
//! seq        8 B   u64 commit sequence at snapshot time
//! n_docs     4 B   u32
//! header_fnv 8 B   FNV-1a over the 20 bytes format..n_docs
//! n_docs × document section:
//!   len      4 B   u32 payload bytes
//!   fnv      8 B   FNV-1a over the payload
//!   payload:
//!     doc_id   u32
//!     version  u64
//!     n_nodes  u32
//!     palette  u32 count + count × u32 global catalog label ids
//!     labels   packed palette indices, ⌈log₂|palette|⌉ bits per node
//!     shape    balanced-parentheses structure bits, 2 bits per node
//! ```
//!
//! Tree *shape* costs 2 bits/node and labels cost `⌈log₂|palette|⌉`
//! bits/node against a per-document palette of global catalog ids — for
//! a 4-label document that is 0.5 bytes/node, vs the 28-byte arena node
//! of the in-memory [`Tree`]. Every section carries its
//! own checksum so a torn or bit-flipped snapshot is rejected as a
//! whole, never half-loaded.

use crate::wire::{fnv1a, pack_indices, unpack_index, Dec, Enc};
use crate::StoreError;
use std::path::Path;
use twx_xtree::bp::{bits_for_palette, StructureBits};
use twx_xtree::{Alphabet, Document, Label, Tree};

/// File magic for shard snapshots.
pub const SNAP_MAGIC: &[u8; 8] = b"TWXSNAP1";
/// Current snapshot format version.
pub const SNAP_FORMAT: u32 = 1;

/// One document as stored in (or decoded from) a snapshot section.
#[derive(Clone, Debug)]
pub struct SnapshotDoc {
    /// Corpus-wide document id.
    pub doc_id: u32,
    /// The document's version at snapshot time.
    pub version: u64,
    /// The decoded document.
    pub doc: Document,
}

/// Encodes one document section payload (without the len/fnv framing).
pub fn encode_doc(doc_id: u32, version: u64, doc: &Document) -> Vec<u8> {
    let labels = doc.tree.label_column();
    // Per-document palette: distinct global label ids, in first-use order.
    let mut palette: Vec<u32> = Vec::new();
    let mut slot = vec![usize::MAX; doc.alphabet.len().max(1)];
    let mut indices = Vec::with_capacity(labels.len());
    for &l in &labels {
        let s = slot
            .get_mut(l.index())
            .expect("label id within the document alphabet");
        if *s == usize::MAX {
            *s = palette.len();
            palette.push(l.0);
        }
        indices.push(*s);
    }
    let width = bits_for_palette(palette.len());
    let packed = pack_indices(indices.into_iter(), labels.len(), width);
    let bits = doc.tree.structure_bits();

    let mut e = Enc::new();
    e.u32(doc_id);
    e.u64(version);
    e.u32(doc.tree.len() as u32);
    e.u32(palette.len() as u32);
    for &p in &palette {
        e.u32(p);
    }
    e.words(&packed);
    e.u32(bits.len() as u32);
    e.words(bits.words());
    e.0
}

/// Decodes one document section payload. `alphabet` is the recovered
/// catalog snapshot the document will carry; palette ids must resolve
/// inside it.
pub fn decode_doc(payload: &[u8], alphabet: &Alphabet) -> Result<SnapshotDoc, StoreError> {
    let corrupt = |detail: String| StoreError::Corrupt {
        what: "snapshot document section",
        detail,
    };
    let mut d = Dec::new(payload);
    let step = |r: Result<u64, crate::wire::WireError>| r.map_err(|e| corrupt(e.to_string()));
    let doc_id = step(d.u32().map(u64::from))? as u32;
    let version = step(d.u64())?;
    let n_nodes = step(d.u32().map(u64::from))? as usize;
    let palette_len = step(d.u32().map(u64::from))? as usize;
    let mut palette = Vec::with_capacity(palette_len.min(payload.len() / 4 + 1));
    for _ in 0..palette_len {
        let id = step(d.u32().map(u64::from))? as u32;
        if id as usize >= alphabet.len() {
            return Err(corrupt(format!(
                "palette label id {id} outside the catalog ({} labels)",
                alphabet.len()
            )));
        }
        palette.push(id);
    }
    let packed = d.words().map_err(|e| corrupt(e.to_string()))?;
    let width = bits_for_palette(palette.len());
    if packed.len() * 64 < n_nodes * width {
        return Err(corrupt(format!(
            "packed label words too short: {} words for {n_nodes} nodes × {width} bits",
            packed.len()
        )));
    }
    let bit_len = step(d.u32().map(u64::from))? as usize;
    if bit_len != 2 * n_nodes {
        return Err(corrupt(format!(
            "structure bit length {bit_len} does not match {n_nodes} nodes"
        )));
    }
    let words = d.words().map_err(|e| corrupt(e.to_string()))?;
    let bits = StructureBits::from_words(words, bit_len).map_err(StoreError::Bp)?;
    if n_nodes == 0 {
        return Err(corrupt("zero-node document".to_string()));
    }
    let mut labels = Vec::with_capacity(n_nodes);
    for i in 0..n_nodes {
        let idx = unpack_index(&packed, i, width);
        let &id = palette.get(idx).ok_or_else(|| {
            corrupt(format!(
                "label index {idx} outside palette of {palette_len}"
            ))
        })?;
        labels.push(Label(id));
    }
    let tree = Tree::from_structure_bits(&bits, &labels).map_err(StoreError::Bp)?;
    Ok(SnapshotDoc {
        doc_id,
        version,
        doc: Document::new(tree, alphabet.clone()),
    })
}

/// Encodes a whole shard snapshot file.
pub fn encode_shard(shard: u32, seq: u64, docs: &[(u32, u64, &Document)]) -> Vec<u8> {
    let mut header = Enc::new();
    header.u32(SNAP_FORMAT);
    header.u32(shard);
    header.u64(seq);
    header.u32(docs.len() as u32);
    let mut out = Vec::new();
    out.extend_from_slice(SNAP_MAGIC);
    let hfnv = fnv1a(&header.0);
    out.extend_from_slice(&header.0);
    out.extend_from_slice(&hfnv.to_le_bytes());
    for &(doc_id, version, doc) in docs {
        let payload = encode_doc(doc_id, version, doc);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

/// A decoded shard snapshot.
#[derive(Clone, Debug)]
pub struct ShardSnapshot {
    /// Shard id from the header.
    pub shard: u32,
    /// Commit sequence the snapshot was taken at.
    pub seq: u64,
    /// The shard's documents, in entry order.
    pub docs: Vec<SnapshotDoc>,
}

/// Decodes and fully validates a shard snapshot file. Any checksum or
/// framing violation is a typed [`StoreError::Corrupt`] — never a panic,
/// never a partial result.
pub fn decode_shard(bytes: &[u8], alphabet: &Alphabet) -> Result<ShardSnapshot, StoreError> {
    let corrupt = |detail: String| StoreError::Corrupt {
        what: "snapshot file",
        detail,
    };
    if bytes.len() < 8 + 20 + 8 {
        return Err(corrupt("file shorter than the header".to_string()));
    }
    if &bytes[..8] != SNAP_MAGIC {
        return Err(corrupt("bad magic".to_string()));
    }
    let header = &bytes[8..28];
    let stored = u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes"));
    if fnv1a(header) != stored {
        return Err(corrupt("header checksum mismatch".to_string()));
    }
    let mut d = Dec::new(header);
    let format = d.u32().expect("header length checked");
    if format != SNAP_FORMAT {
        return Err(corrupt(format!("unsupported format version {format}")));
    }
    let shard = d.u32().expect("header length checked");
    let seq = d.u64().expect("header length checked");
    let n_docs = d.u32().expect("header length checked") as usize;
    let mut docs = Vec::with_capacity(n_docs.min(bytes.len() / 12 + 1));
    let mut pos = 36usize;
    for k in 0..n_docs {
        if bytes.len() < pos + 12 {
            return Err(corrupt(format!("section {k} framing truncated")));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let want = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        pos += 12;
        if bytes.len() < pos + len {
            return Err(corrupt(format!("section {k} payload truncated")));
        }
        let payload = &bytes[pos..pos + len];
        if fnv1a(payload) != want {
            return Err(corrupt(format!("section {k} checksum mismatch")));
        }
        docs.push(decode_doc(payload, alphabet)?);
        pos += len;
    }
    if pos != bytes.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after the last section",
            bytes.len() - pos
        )));
    }
    Ok(ShardSnapshot { shard, seq, docs })
}

/// The snapshot filename for `(shard, seq)`; lexicographic order on the
/// zero-padded hex seq equals numeric order, so directory listings sort
/// newest-last.
pub fn snapshot_file_name(shard: u32, seq: u64) -> String {
    format!("shard-{shard:04}-{seq:016x}.snap")
}

/// Parses `(shard, seq)` back out of a snapshot filename.
pub fn parse_snapshot_file_name(name: &str) -> Option<(u32, u64)> {
    let rest = name.strip_prefix("shard-")?.strip_suffix(".snap")?;
    let (shard, seq) = rest.split_once('-')?;
    Some((shard.parse().ok()?, u64::from_str_radix(seq, 16).ok()?))
}

/// Lists `(seq, path)` of every snapshot file for `shard` in `dir`,
/// newest first.
pub fn list_snapshots(dir: &Path, shard: u32) -> std::io::Result<Vec<(u64, std::path::PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some((s, seq)) = parse_snapshot_file_name(name) {
            if s == shard {
                found.push((seq, entry.path()));
            }
        }
    }
    found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::parse::parse_sexp_catalog;
    use twx_xtree::Catalog;

    fn doc(catalog: &Catalog, sexp: &str) -> Document {
        parse_sexp_catalog(sexp, catalog).unwrap()
    }

    #[test]
    fn shard_round_trip() {
        let cat = Catalog::from_names(["a", "b", "c"]);
        let d0 = doc(&cat, "(a (b c) b)");
        let d1 = doc(&cat, "(c)");
        let bytes = encode_shard(3, 17, &[(0, 2, &d0), (5, 0, &d1)]);
        let back = decode_shard(&bytes, &cat.snapshot()).unwrap();
        assert_eq!(back.shard, 3);
        assert_eq!(back.seq, 17);
        assert_eq!(back.docs.len(), 2);
        assert_eq!(back.docs[0].doc_id, 0);
        assert_eq!(back.docs[0].version, 2);
        assert_eq!(back.docs[0].doc.tree, d0.tree);
        assert_eq!(back.docs[1].doc_id, 5);
        assert_eq!(back.docs[1].doc.tree, d1.tree);
    }

    #[test]
    fn empty_shard_round_trips() {
        let cat = Catalog::from_names(["a"]);
        let bytes = encode_shard(0, 0, &[]);
        let back = decode_shard(&bytes, &cat.snapshot()).unwrap();
        assert!(back.docs.is_empty());
    }

    #[test]
    fn every_flipped_byte_is_rejected_not_panicking() {
        let cat = Catalog::from_names(["a", "b"]);
        let d0 = doc(&cat, "(a (b) (a b))");
        let bytes = encode_shard(0, 9, &[(0, 1, &d0)]);
        let alphabet = cat.snapshot();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            // decoding either fails with a typed error or — only if the
            // flip landed somewhere truly redundant — returns the exact
            // original; it must never panic or return a different tree.
            if let Ok(s) = decode_shard(&bad, &alphabet) {
                assert_eq!(s.docs[0].doc.tree, d0.tree, "byte {i}");
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_rejected() {
        let cat = Catalog::from_names(["a", "b"]);
        let d0 = doc(&cat, "(a b b)");
        let bytes = encode_shard(0, 1, &[(0, 0, &d0)]);
        let alphabet = cat.snapshot();
        for n in 0..bytes.len() {
            assert!(decode_shard(&bytes[..n], &alphabet).is_err(), "len {n}");
        }
    }

    #[test]
    fn file_names_round_trip_and_sort() {
        let n = snapshot_file_name(12, 0x1_0000);
        assert_eq!(parse_snapshot_file_name(&n), Some((12, 0x1_0000)));
        assert!(snapshot_file_name(0, 9) < snapshot_file_name(0, 10));
        assert_eq!(parse_snapshot_file_name("journal.log"), None);
    }
}

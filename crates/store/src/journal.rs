//! The append-only edit journal.
//!
//! Each committed [`Edit`] becomes one
//! length-prefixed, checksummed record:
//!
//! ```text
//! len  4 B   u32 payload bytes
//! fnv  8 B   FNV-1a over the payload
//! payload:
//!   seq          u64   global commit sequence of this edit
//!   doc_id       u32
//!   post_version u64   the document version the edit produced
//!   kind         u8    0 = Relabel, 1 = InsertChild, 2 = RemoveSubtree
//!   …kind-specific fields; labels travel as *names* (length-prefixed
//!   UTF-8), not ids, so replay interns them idempotently against the
//!   recovered catalog even when the edit introduced a label newer than
//!   the last persisted catalog file.
//! ```
//!
//! The reader accepts the longest **valid prefix**: it stops at the
//! first record whose framing runs past end-of-file or whose checksum
//! does not match, and reports exactly how many bytes it dropped — a
//! torn tail after a crash is expected and truncated, never a panic and
//! never silently mixed into replay.

use crate::wire::{fnv1a, Dec, Enc};
use crate::StoreError;
use twx_xtree::edit::Edit;
use twx_xtree::{Catalog, NodeId};

/// One journalled edit, in catalog-independent form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// Global commit sequence number of the edit (1-based).
    pub seq: u64,
    /// The edited document.
    pub doc_id: u32,
    /// The version the edit produced (pre-edit version + 1).
    pub post_version: u64,
    /// The edit itself, with labels by name.
    pub op: JournalOp,
}

/// A catalog-independent [`Edit`]: labels are names, node ids are raw.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalOp {
    /// `Edit::Relabel`.
    Relabel {
        /// The relabelled node.
        node: u32,
        /// The new label's name.
        label: String,
    },
    /// `Edit::InsertChild`.
    InsertChild {
        /// The node gaining a child.
        parent: u32,
        /// Child index.
        position: u32,
        /// The new leaf's label name.
        label: String,
    },
    /// `Edit::RemoveSubtree`.
    RemoveSubtree {
        /// Root of the removed subtree.
        node: u32,
    },
}

impl JournalRecord {
    /// Captures a committed edit. `catalog` resolves label ids to names.
    pub fn from_edit(
        seq: u64,
        doc_id: u32,
        post_version: u64,
        edit: &Edit,
        catalog: &Catalog,
    ) -> JournalRecord {
        let op = match *edit {
            Edit::Relabel { node, label } => JournalOp::Relabel {
                node: node.0,
                label: catalog.name(label),
            },
            Edit::InsertChild {
                parent,
                position,
                label,
            } => JournalOp::InsertChild {
                parent: parent.0,
                position: position as u32,
                label: catalog.name(label),
            },
            Edit::RemoveSubtree { node } => JournalOp::RemoveSubtree { node: node.0 },
        };
        JournalRecord {
            seq,
            doc_id,
            post_version,
            op,
        }
    }

    /// Rebuilds the typed [`Edit`], interning label names into `catalog`
    /// (idempotent: an already-known name resolves to its existing id).
    pub fn to_edit(&self, catalog: &Catalog) -> Edit {
        match &self.op {
            JournalOp::Relabel { node, label } => Edit::Relabel {
                node: NodeId(*node),
                label: catalog.intern(label),
            },
            JournalOp::InsertChild {
                parent,
                position,
                label,
            } => Edit::InsertChild {
                parent: NodeId(*parent),
                position: *position as usize,
                label: catalog.intern(label),
            },
            JournalOp::RemoveSubtree { node } => Edit::RemoveSubtree {
                node: NodeId(*node),
            },
        }
    }

    /// Encodes the record with its framing (len + fnv + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.seq);
        e.u32(self.doc_id);
        e.u64(self.post_version);
        match &self.op {
            JournalOp::Relabel { node, label } => {
                e.u8(0);
                e.u32(*node);
                e.str(label);
            }
            JournalOp::InsertChild {
                parent,
                position,
                label,
            } => {
                e.u8(1);
                e.u32(*parent);
                e.u32(*position);
                e.str(label);
            }
            JournalOp::RemoveSubtree { node } => {
                e.u8(2);
                e.u32(*node);
            }
        }
        let mut out = Vec::with_capacity(12 + e.0.len());
        out.extend_from_slice(&(e.0.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&e.0).to_le_bytes());
        out.extend_from_slice(&e.0);
        out
    }

    fn decode_payload(payload: &[u8]) -> Result<JournalRecord, StoreError> {
        let corrupt = |detail: String| StoreError::Corrupt {
            what: "journal record",
            detail,
        };
        let mut d = Dec::new(payload);
        let mut err = |e: crate::wire::WireError| corrupt(e.to_string());
        let seq = d.u64().map_err(&mut err)?;
        let doc_id = d.u32().map_err(&mut err)?;
        let post_version = d.u64().map_err(&mut err)?;
        let kind = d.u8().map_err(&mut err)?;
        let op = match kind {
            0 => JournalOp::Relabel {
                node: d.u32().map_err(&mut err)?,
                label: d.str().map_err(&mut err)?,
            },
            1 => JournalOp::InsertChild {
                parent: d.u32().map_err(&mut err)?,
                position: d.u32().map_err(&mut err)?,
                label: d.str().map_err(&mut err)?,
            },
            2 => JournalOp::RemoveSubtree {
                node: d.u32().map_err(&mut err)?,
            },
            k => return Err(corrupt(format!("unknown record kind {k}"))),
        };
        if d.remaining() != 0 {
            return Err(corrupt(format!("{} trailing payload bytes", d.remaining())));
        }
        Ok(JournalRecord {
            seq,
            doc_id,
            post_version,
            op,
        })
    }
}

/// The result of scanning a journal byte buffer: the longest valid
/// record prefix plus what (if anything) had to be dropped.
#[derive(Clone, Debug, Default)]
pub struct JournalScan {
    /// All records in the valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (truncate the file to this).
    pub valid_len: u64,
    /// Bytes past the valid prefix (0 when the journal is clean).
    pub torn_bytes: u64,
    /// Why the scan stopped early, if it did.
    pub torn_reason: Option<String>,
}

/// Scans journal bytes into the longest valid record prefix. Framing
/// errors and checksum mismatches stop the scan — they are reported in
/// the result, not raised — so recovery after a torn append always
/// lands on the newest consistent prefix.
pub fn scan(bytes: &[u8]) -> JournalScan {
    let mut out = JournalScan::default();
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            break;
        }
        if bytes.len() - pos < 12 {
            out.torn_reason = Some("torn record framing at end of journal".to_string());
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let want = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        if bytes.len() - pos - 12 < len {
            out.torn_reason = Some(format!(
                "torn record payload: header says {len} bytes, {} remain",
                bytes.len() - pos - 12
            ));
            break;
        }
        let payload = &bytes[pos + 12..pos + 12 + len];
        if fnv1a(payload) != want {
            out.torn_reason = Some("record checksum mismatch".to_string());
            break;
        }
        match JournalRecord::decode_payload(payload) {
            Ok(rec) => out.records.push(rec),
            Err(e) => {
                out.torn_reason = Some(e.to_string());
                break;
            }
        }
        pos += 12 + len;
        out.valid_len = pos as u64;
    }
    out.torn_bytes = (bytes.len() as u64) - out.valid_len;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::Label;

    fn sample() -> Vec<JournalRecord> {
        vec![
            JournalRecord {
                seq: 1,
                doc_id: 0,
                post_version: 1,
                op: JournalOp::Relabel {
                    node: 2,
                    label: "b".to_string(),
                },
            },
            JournalRecord {
                seq: 2,
                doc_id: 3,
                post_version: 5,
                op: JournalOp::InsertChild {
                    parent: 0,
                    position: 1,
                    label: "zz".to_string(),
                },
            },
            JournalRecord {
                seq: 3,
                doc_id: 0,
                post_version: 2,
                op: JournalOp::RemoveSubtree { node: 1 },
            },
        ]
    }

    #[test]
    fn records_round_trip_through_the_scanner() {
        let mut bytes = Vec::new();
        for r in sample() {
            bytes.extend_from_slice(&r.encode());
        }
        let s = scan(&bytes);
        assert_eq!(s.records, sample());
        assert_eq!(s.valid_len, bytes.len() as u64);
        assert_eq!(s.torn_bytes, 0);
        assert!(s.torn_reason.is_none());
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let mut bytes = Vec::new();
        let mut prefix_len = 0;
        for (i, r) in sample().into_iter().enumerate() {
            if i == 2 {
                prefix_len = bytes.len();
            }
            bytes.extend_from_slice(&r.encode());
        }
        // cut the last record in half
        let cut = prefix_len + (bytes.len() - prefix_len) / 2;
        let s = scan(&bytes[..cut]);
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.valid_len, prefix_len as u64);
        assert_eq!(s.torn_bytes, (cut - prefix_len) as u64);
        assert!(s.torn_reason.is_some());
    }

    #[test]
    fn checksum_flip_stops_the_scan_without_panicking() {
        let mut bytes = Vec::new();
        for r in sample() {
            bytes.extend_from_slice(&r.encode());
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            let s = scan(&bad); // must not panic; prefix only
            assert!(s.records.len() <= 3);
        }
    }

    #[test]
    fn edits_convert_with_label_names_interned_on_replay() {
        let cat = Catalog::from_names(["a"]);
        let edit = Edit::Relabel {
            node: NodeId(1),
            label: cat.intern("fresh"),
        };
        let rec = JournalRecord::from_edit(7, 2, 3, &edit, &cat);
        assert_eq!(
            rec.op,
            JournalOp::Relabel {
                node: 1,
                label: "fresh".to_string()
            }
        );
        // replay against a catalog that has never seen "fresh"
        let cat2 = Catalog::from_names(["a"]);
        let back = rec.to_edit(&cat2);
        assert_eq!(
            back,
            Edit::Relabel {
                node: NodeId(1),
                label: Label(1)
            }
        );
        assert_eq!(cat2.lookup("fresh"), Some(Label(1)));
    }
}

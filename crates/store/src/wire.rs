//! Little-endian byte codec shared by the snapshot and journal formats.
//!
//! Every multi-byte integer on disk is little-endian; every variable-size
//! field is length-prefixed. Sections are guarded by 64-bit FNV-1a
//! checksums computed over the *payload* bytes only, so a reader can
//! reject a corrupt section without trusting anything inside it.

/// 64-bit FNV-1a over a byte slice — the same hash the VM uses for plan
/// fingerprints, chosen because it is dependency-free, fast, and good
/// enough to catch torn writes and bit flips (we are not defending
/// against adversarial collisions).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Append-only encoder: `put_*` push little-endian bytes onto a growing
/// buffer.
#[derive(Debug, Default)]
pub struct Enc(pub Vec<u8>);

impl Enc {
    /// A fresh empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `u64` word array.
    pub fn words(&mut self, ws: &[u64]) {
        self.u32(ws.len() as u32);
        for &w in ws {
            self.u64(w);
        }
    }
}

/// A decode failure: the buffer ended early or held an impossible value.
/// Carries the byte offset for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Offset at which decoding failed.
    pub at: usize,
    /// What the decoder was trying to read.
    pub what: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "truncated or invalid {} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked reader over a byte slice.
#[derive(Clone, Copy, Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError { at: self.pos, what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let at = self.pos;
        let n = self.u32()? as usize;
        let b = self.take(n, "string body")?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError {
            at,
            what: "utf-8 string",
        })
    }

    /// Reads a length-prefixed `u64` word array.
    pub fn words(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.u32()? as usize;
        // Guard the allocation against a corrupt length before reading.
        if self.remaining() < n.saturating_mul(8) {
            return Err(WireError {
                at: self.pos,
                what: "word array",
            });
        }
        (0..n).map(|_| self.u64()).collect()
    }
}

/// Packs `n` indices of `width` bits each (LSB-first) into `u64` words.
/// `width == 0` (palette of ≤1 label) packs to nothing.
pub fn pack_indices(indices: impl Iterator<Item = usize>, n: usize, width: usize) -> Vec<u64> {
    if width == 0 {
        return Vec::new();
    }
    let mut words = vec![0u64; (n * width).div_ceil(64)];
    for (i, idx) in indices.enumerate() {
        let bit = i * width;
        let (w, off) = (bit / 64, bit % 64);
        words[w] |= (idx as u64) << off;
        if off + width > 64 {
            words[w + 1] |= (idx as u64) >> (64 - off);
        }
    }
    words
}

/// Reads index `i` of `width` bits back out of `words`.
pub fn unpack_index(words: &[u64], i: usize, width: usize) -> usize {
    if width == 0 {
        return 0;
    }
    let bit = i * width;
    let (w, off) = (bit / 64, bit % 64);
    let mut v = words[w] >> off;
    if off + width > 64 {
        v |= words[w + 1] << (64 - off);
    }
    (v & ((1u64 << width) - 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enc_dec_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 3);
        e.str("héllo");
        e.words(&[1, 2, 3]);
        let mut d = Dec::new(&e.0);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.words().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut e = Enc::new();
        e.str("abcdef");
        let mut d = Dec::new(&e.0[..6]);
        assert!(d.str().is_err());
        // corrupt word-array length does not trigger a huge allocation
        let mut e2 = Enc::new();
        e2.u32(u32::MAX);
        assert!(Dec::new(&e2.0).words().is_err());
    }

    #[test]
    fn fnv_differs_on_a_bit_flip() {
        let a = b"the quick brown fox".to_vec();
        let mut b = a.clone();
        b[3] ^= 0x40;
        assert_ne!(fnv1a(&a), fnv1a(&b));
        assert_eq!(fnv1a(&a), fnv1a(&a));
    }

    #[test]
    fn index_packing_round_trips_across_word_boundaries() {
        for width in [1usize, 2, 3, 5, 8, 13] {
            let n = 100;
            let vals: Vec<usize> = (0..n).map(|i| (i * 7) % (1 << width)).collect();
            let words = pack_indices(vals.iter().copied(), n, width);
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(unpack_index(&words, i, width), v, "width {width} idx {i}");
            }
        }
        assert!(pack_indices(std::iter::repeat_n(0, 9), 9, 0).is_empty());
    }
}

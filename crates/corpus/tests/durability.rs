//! Durable-corpus tests: build-with-store → kill → recover round trips,
//! write-ahead journalling through `Corpus::update`, the background
//! snapshotter, and the shard-placement regression (recovery must
//! reproduce the exact pre-crash placement, not re-run the policy).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use twx_corpus::{Corpus, DocId, Placement, StoreConfig};
use twx_xtree::edit::{random_edit, DocVersion, Edit};
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::{Catalog, NodeId};

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("twx-corpus-test-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn build_random(dir: &Path, n_docs: usize, n_shards: usize, seed: u64) -> (Corpus, Arc<Catalog>) {
    let cat = Arc::new(Catalog::from_names(["a", "b", "c", "d"]));
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut b = Corpus::builder(Arc::clone(&cat), n_shards).placement(Placement::SizeBalanced);
    for _ in 0..n_docs {
        let n = rng.gen_range(1..40usize);
        b.add_document(random_document_in(Shape::DocumentLike, n, &cat, &mut rng));
    }
    let c = b
        .with_store(dir.to_path_buf())
        .try_build()
        .expect("initial persist");
    (c, cat)
}

/// Applies `k` random edits through the corpus, returning the receipts'
/// (id, version) pairs.
fn churn(c: &Corpus, cat: &Catalog, k: usize, seed: u64) -> Vec<(DocId, DocVersion)> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut out = Vec::new();
    let labels: Vec<_> = cat.snapshot().labels().collect();
    for _ in 0..k {
        let id = DocId(rng.gen_range(0..c.n_docs() as u32));
        let doc = c.doc(id).unwrap();
        let edit = random_edit(&doc.tree, &labels, &mut rng);
        let r = c.update(id, &edit).expect("edit applies");
        out.push((r.id, r.version));
    }
    out
}

fn assert_same_corpus(a: &Corpus, b: &Corpus) {
    assert_eq!(a.n_docs(), b.n_docs());
    assert_eq!(a.n_shards(), b.n_shards());
    assert_eq!(a.seq(), b.seq());
    for id in 0..a.n_docs() as u32 {
        let id = DocId(id);
        assert_eq!(a.placement(id), b.placement(id), "placement of {id}");
        let ea = a.entry(id).unwrap();
        let eb = b.entry(id).unwrap();
        assert_eq!(ea.version, eb.version, "version of {id}");
        assert_eq!(ea.doc.tree, eb.doc.tree, "tree of {id}");
    }
}

#[test]
fn build_churn_recover_is_node_for_node_identical() {
    let s = Scratch::new("roundtrip");
    let (c, cat) = build_random(&s.0, 9, 3, 11);
    churn(&c, &cat, 120, 12);
    let live_seq = c.seq();
    drop(c); // "kill" the process; fsync_every=1 made every ack durable

    let (r, report) = Corpus::recover(&s.0, StoreConfig::default()).unwrap();
    assert_eq!(r.seq(), live_seq);
    assert_eq!(report.records_replayed, 120);
    assert_eq!(report.truncated_bytes, 0);

    // rebuild the same corpus in memory and compare node-for-node
    let s2 = Scratch::new("oracle");
    let (oracle, cat2) = build_random(&s2.0, 9, 3, 11);
    churn(&oracle, &cat2, 120, 12);
    assert_same_corpus(&oracle, &r);
}

#[test]
fn recovered_corpus_keeps_journalling_and_recovers_again() {
    let s = Scratch::new("rejournal");
    let (c, cat) = build_random(&s.0, 4, 2, 21);
    churn(&c, &cat, 30, 22);
    drop(c);

    let (r, _) = Corpus::recover(&s.0, StoreConfig::default()).unwrap();
    let more = churn(&r, r.catalog(), 30, 23);
    let seq = r.seq();
    drop(r);

    let (r2, _) = Corpus::recover(&s.0, StoreConfig::default()).unwrap();
    assert_eq!(r2.seq(), seq);
    for (id, version) in more {
        assert!(r2.entry(id).unwrap().version >= version);
    }
}

#[test]
fn size_balanced_placement_is_deterministic_and_survives_recovery() {
    // the satellite regression: placement is decided once at build time,
    // recorded in snapshots, and recovery reproduces it from the store —
    // it never re-runs the placement policy against post-edit sizes
    let s = Scratch::new("placement");
    let (c, cat) = build_random(&s.0, 12, 4, 31);
    let before: Vec<_> = (0..12).map(|i| c.placement(DocId(i)).unwrap()).collect();

    // deterministic: an identical build lands identically
    let s2 = Scratch::new("placement-twin");
    let (twin, _) = build_random(&s2.0, 12, 4, 31);
    let twin_before: Vec<_> = (0..12).map(|i| twin.placement(DocId(i)).unwrap()).collect();
    assert_eq!(before, twin_before);

    // skew the sizes hard so a re-run of SizeBalanced would choose
    // differently, then recover: placement must be the recorded one
    let l = cat.lookup("a").unwrap();
    for _ in 0..50 {
        c.update(
            DocId(0),
            &Edit::InsertChild {
                parent: NodeId(0),
                position: 0,
                label: l,
            },
        )
        .unwrap();
    }
    drop(c);
    let (r, _) = Corpus::recover(&s.0, StoreConfig::default()).unwrap();
    let after: Vec<_> = (0..12).map(|i| r.placement(DocId(i)).unwrap()).collect();
    assert_eq!(before, after);
}

#[test]
fn persist_compacts_the_journal_and_recovery_still_matches() {
    let s = Scratch::new("persist");
    let (c, cat) = build_random(&s.0, 6, 2, 41);
    churn(&c, &cat, 40, 42);
    let store = Arc::clone(c.store().unwrap());
    assert!(store.journal_bytes() > 0);
    let receipt = c.persist().unwrap().unwrap();
    assert_eq!(receipt.seq, 40);
    assert_eq!(store.journal_bytes(), 0, "all records were covered");

    churn(&c, &cat, 10, 43); // a fresh journal tail on top of the snapshots
    let live: Vec<_> = (0..6).map(|i| c.entry(DocId(i)).unwrap()).collect();
    drop(c);

    let (r, report) = Corpus::recover(&s.0, StoreConfig::default()).unwrap();
    assert_eq!(report.records_replayed, 10);
    assert_eq!(r.seq(), 50);
    for e in live {
        let re = r.entry(e.id).unwrap();
        assert_eq!(re.version, e.version);
        assert_eq!(re.doc.tree, e.doc.tree);
    }
}

#[test]
fn background_snapshotter_compacts_once_the_journal_grows() {
    let s = Scratch::new("snapshotter");
    let (c, cat) = build_random(&s.0, 4, 2, 51);
    let c = Arc::new(c);
    let snapshotter = c.spawn_snapshotter(1, Duration::from_millis(5));
    churn(&c, &cat, 25, 52);
    // wait (bounded) for at least one background persist
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while snapshotter.persists() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(snapshotter.persists() > 0, "snapshotter never ran");
    assert_eq!(snapshotter.errors(), 0, "{:?}", snapshotter.last_error());
    drop(snapshotter); // stops and joins the thread
    drop(Arc::try_unwrap(c).expect("snapshotter held the only other ref"));

    let (r, _) = Corpus::recover(&s.0, StoreConfig::default()).unwrap();
    assert_eq!(r.seq(), 25);
}

#[test]
fn storeless_corpus_still_builds_and_updates() {
    let cat = Arc::new(Catalog::from_names(["a", "b"]));
    let mut b = Corpus::builder(Arc::clone(&cat), 2);
    b.add_sexp("(a b)").unwrap();
    let c = b.build();
    assert!(c.store().is_none());
    assert!(c.persist().unwrap().is_none());
    let l = cat.lookup("b").unwrap();
    c.update(
        DocId(0),
        &Edit::Relabel {
            node: NodeId(0),
            label: l,
        },
    )
    .unwrap();
    assert_eq!(c.seq(), 1);
}

//! The live corpus under concurrent writers and readers.
//!
//! 4 writer threads commit random typed edits through
//! [`QueryService::update`] while 8 reader threads query; every per-doc
//! answer names the [`DocVersion`] it was evaluated against, and must
//! equal a sequential evaluation on the exact snapshot committed at
//! that version — never a blend of two versions, never a half-applied
//! edit. The version→snapshot oracle is built from the writers' own
//! [`UpdateReceipt`]s, so the test also pins the receipt contract: the
//! returned `doc` *is* the committed snapshot for the returned version.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use treewalk::{Backend, Engine};
use twx_corpus::{Corpus, DocId, QueryService, ServiceConfig};
use twx_xtree::edit::random_edit;
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::SplitMix64;
use twx_xtree::{Catalog, Document};

const QUERIES: &[&str] = &[
    "down*[b]",
    "(down | right)*[c]",
    "down[a]/down*[b]",
    "down*[<down[b]>]",
    ".",
];

const N_DOCS: usize = 8;
const WRITERS: usize = 4;
const READERS: usize = 8;
const EDITS_PER_WRITER: usize = 40;
const QUERIES_PER_READER: usize = 25;

type Oracle = Mutex<HashMap<(u32, u64), Arc<Document>>>;

/// Blocks (bounded) until the writer that committed `(doc, version)`
/// has registered its receipt snapshot — commits become visible to
/// readers a beat before the receipt reaches the oracle map.
fn pinned(oracle: &Oracle, doc: u32, version: u64) -> Arc<Document> {
    for _ in 0..200_000 {
        if let Some(d) = oracle.lock().unwrap().get(&(doc, version)) {
            return Arc::clone(d);
        }
        std::thread::yield_now();
    }
    panic!("no snapshot registered for doc {doc} version {version}");
}

#[test]
fn concurrent_writers_and_readers_agree_with_per_version_oracles() {
    let catalog = Arc::new(Catalog::from_names(["a", "b", "c", "d"]));
    let labels: Vec<_> = ["a", "b", "c", "d"]
        .iter()
        .map(|n| catalog.intern(n))
        .collect();
    let mut rng = SplitMix64::seed_from_u64(0x11fe);
    let mut b = Corpus::builder(Arc::clone(&catalog), 2);
    for _ in 0..N_DOCS {
        b.add_document(random_document_in(Shape::Recursive, 20, &catalog, &mut rng));
    }
    let corpus = Arc::new(b.build());
    let service = QueryService::new(
        Arc::clone(&corpus),
        Engine::with_backend(Backend::Product),
        ServiceConfig {
            workers: 4,
            queue_capacity: 128,
            default_timeout: None,
            slowlog_capacity: 16,
        },
    );

    // seed the oracle with the version-0 snapshots
    let oracle: Oracle = Mutex::new(
        corpus
            .iter()
            .map(|e| ((e.id.0, e.version.0), Arc::clone(&e.doc)))
            .collect(),
    );

    let committed: u64 = std::thread::scope(|s| {
        let writer_handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let service = &service;
                let corpus = &corpus;
                let oracle = &oracle;
                let labels = &labels;
                s.spawn(move || {
                    let mut rng = SplitMix64::seed_from_u64(0xa110 + w as u64);
                    let mut committed = 0u64;
                    for i in 0..EDITS_PER_WRITER {
                        let id = DocId(((w + i) % N_DOCS) as u32);
                        let current = corpus.doc(id).expect("doc exists");
                        let edit = random_edit(&current.tree, labels, &mut rng);
                        // a racing commit can invalidate the edit's node
                        // ids between `doc()` and `update()`; that must
                        // surface as a typed error, never a bad tree
                        if let Ok(receipt) = service.update(id, &edit) {
                            oracle
                                .lock()
                                .unwrap()
                                .insert((id.0, receipt.version.0), Arc::clone(&receipt.doc));
                            committed += 1;
                        }
                    }
                    committed
                })
            })
            .collect();

        let reader_handles: Vec<_> = (0..READERS)
            .map(|r| {
                let service = &service;
                let oracle = &oracle;
                let catalog = &catalog;
                s.spawn(move || {
                    // one oracle compile per query string; the service
                    // recompiles on its own plan cache independently
                    let engine = Engine::with_backend(Backend::Product);
                    let prepared: Vec<_> = QUERIES
                        .iter()
                        .map(|q| engine.prepare_in(catalog, q).expect("oracle prepare"))
                        .collect();
                    for i in 0..QUERIES_PER_READER {
                        let k = (r + i) % QUERIES.len();
                        let q = QUERIES[k];
                        let answer = service.query(q).expect("live query");
                        assert_eq!(answer.per_doc.len(), N_DOCS, "answers cover every doc");
                        for (id, version, set) in &answer.per_doc {
                            let doc = pinned(oracle, id.0, version.0);
                            doc.tree
                                .validate()
                                .expect("committed snapshots are valid trees");
                            let expected = prepared[k].eval(&doc, doc.tree.root());
                            assert_eq!(
                                set, &expected,
                                "`{q}` on doc {} at version {} diverges from the snapshot \
                                 committed at that version",
                                id.0, version.0
                            );
                        }
                    }
                })
            })
            .collect();

        for h in reader_handles {
            h.join().unwrap();
        }
        writer_handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    assert!(
        committed > (WRITERS * EDITS_PER_WRITER) as u64 / 2,
        "most edits commit (only id races may be rejected): {committed}"
    );
    let stats = service.shutdown();
    assert_eq!(stats.updates, committed);
    assert_eq!(
        stats.completed,
        (READERS * QUERIES_PER_READER) as u64,
        "every reader query completed"
    );
    // the corpus ends at the committed sequence number, and every final
    // document is still a valid tree
    assert_eq!(corpus.seq(), committed);
    for entry in corpus.iter() {
        entry.doc.tree.validate().expect("final trees are valid");
    }
}

//! End-to-end properties of the corpus query service.
//!
//! The load-bearing one: for every backend, a concurrent corpus query
//! returns exactly what a sequential [`Engine::query`] returns per
//! document — sharding, queueing, and worker scheduling are invisible in
//! the answer. Plus the failure modes the service is specified to have:
//! deadline expiry yields a *flagged, partial, still-correct* answer, a
//! saturated admission queue yields a typed `Overloaded` rejection, and
//! shutdown drains everything already admitted.

use std::sync::Arc;
use std::time::Duration;
use treewalk::{Backend, Engine};
use twx_corpus::{Corpus, Placement, QueryService, ServiceConfig, ServiceError};
use twx_obs::{self as obs, Counter};
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::Catalog;

const QUERIES: &[&str] = &[
    "down*[b]",
    "(down | right)*[c]",
    "down[a]/down*[b]",
    "down+[!a and !b]",
    "?(a)/down/down",
    "down*[<down[b]> or <down[c]>]",
    ".",
    "down*[W(<down+[d]>)]",
];

fn build_corpus(
    seed: u64,
    n_docs: usize,
    max_extra_nodes: u64,
    n_shards: usize,
    placement: Placement,
) -> Arc<Corpus> {
    let catalog = Arc::new(Catalog::from_names(["a", "b", "c", "d"]));
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut b = Corpus::builder(Arc::clone(&catalog), n_shards).placement(placement);
    let shapes = [Shape::Recursive, Shape::Deep(2), Shape::Bounded(3)];
    for i in 0..n_docs {
        let n = 5 + (rng.next_u64() % max_extra_nodes) as usize;
        b.add_document(random_document_in(
            shapes[i % shapes.len()],
            n,
            &catalog,
            &mut rng,
        ));
    }
    Arc::new(b.build())
}

/// Concurrent answers equal sequential per-document evaluation, for
/// every backend, both placements, and several shard counts.
#[test]
fn service_matches_sequential_engine_on_every_backend() {
    for backend in [
        Backend::Product,
        Backend::Automaton,
        Backend::Logic,
        Backend::Vm,
    ] {
        // the Logic backend is the slow declarative reference: keep its
        // documents small so the sweep stays test-suite-sized
        let (n_docs, max_extra) = match backend {
            Backend::Product => (10, 60),
            Backend::Automaton => (8, 28),
            Backend::Logic => (6, 10),
            Backend::Vm => (10, 60),
        };
        for (n_shards, placement) in [
            (1, Placement::RoundRobin),
            (3, Placement::RoundRobin),
            (4, Placement::SizeBalanced),
        ] {
            let corpus = build_corpus(
                0xC0DE + n_shards as u64,
                n_docs,
                max_extra,
                n_shards,
                placement,
            );
            let engine = Engine::with_backend(backend);
            let service = QueryService::new(
                Arc::clone(&corpus),
                engine.clone(),
                ServiceConfig {
                    workers: 3,
                    queue_capacity: 64,
                    default_timeout: None,
                    slowlog_capacity: 16,
                },
            );
            for q in QUERIES {
                let answer = service.query(q).unwrap_or_else(|e| {
                    panic!("{backend:?}/{n_shards} shards: query `{q}` failed: {e}")
                });
                assert!(!answer.timed_out);
                assert_eq!(
                    answer.per_doc.len(),
                    corpus.n_docs(),
                    "query `{q}` covers all docs"
                );
                assert_eq!(answer.shards.len(), n_shards);
                let mut expected_total = 0u64;
                for (id, _version, set) in &answer.per_doc {
                    let doc = corpus.doc(*id).expect("answer ids are corpus ids");
                    let sequential = engine.query(&doc, q, doc.tree.root()).unwrap();
                    assert_eq!(
                        *set, sequential,
                        "{backend:?}/{n_shards} shards: `{q}` on {id} diverges from sequential"
                    );
                    expected_total += sequential.count() as u64;
                }
                assert_eq!(answer.total_matches, expected_total);
            }
            let stats = service.shutdown();
            assert_eq!(stats.submitted, QUERIES.len() as u64);
            assert_eq!(stats.completed, QUERIES.len() as u64);
            assert_eq!(stats.rejected, 0);
        }
    }
}

/// An already-expired deadline yields a flagged, partial answer whose
/// documents (if any) are still individually correct.
#[test]
fn expired_deadline_yields_flagged_partial_answer() {
    let corpus = build_corpus(7, 12, 40, 3, Placement::RoundRobin);
    let engine = Engine::with_backend(Backend::Product);
    let service = QueryService::new(
        Arc::clone(&corpus),
        engine.clone(),
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            default_timeout: None,
            slowlog_capacity: 16,
        },
    );
    let answer = service
        .query_with_timeout("down*[b]", Some(Duration::ZERO))
        .unwrap();
    assert!(
        answer.timed_out,
        "a zero deadline cannot finish 12 documents"
    );
    assert!(answer.per_doc.len() < corpus.n_docs());
    let skipped: usize = answer.shards.iter().map(|t| t.skipped_docs).sum();
    assert_eq!(skipped + answer.per_doc.len(), corpus.n_docs());
    for (id, _version, set) in &answer.per_doc {
        let doc = corpus.doc(*id).unwrap();
        assert_eq!(
            *set,
            engine.query(&doc, "down*[b]", doc.tree.root()).unwrap()
        );
    }
    // an ample deadline on the same service completes fully
    let full = service
        .query_with_timeout("down*[b]", Some(Duration::from_secs(60)))
        .unwrap();
    assert!(!full.timed_out);
    assert_eq!(full.per_doc.len(), corpus.n_docs());
    let stats = service.shutdown();
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.completed, 2);
}

/// With no workers draining, admission control fills deterministically
/// and rejects with the typed `Overloaded` error; nothing is partially
/// queued.
#[test]
fn saturated_queue_rejects_with_overloaded() {
    let corpus = build_corpus(11, 6, 20, 2, Placement::RoundRobin);
    let service = QueryService::new(
        corpus,
        Engine::with_backend(Backend::Product),
        ServiceConfig {
            workers: 0, // manual mode: nothing drains
            queue_capacity: 5,
            default_timeout: None,
            slowlog_capacity: 16,
        },
    );
    // each request needs 2 slots; 2 requests fit (4/5), the third cannot
    let _t1 = service.submit("down*[b]").unwrap();
    let _t2 = service.submit("down*[b]").unwrap();
    match service.submit("down*[b]") {
        Err(ServiceError::Overloaded { queued, capacity }) => {
            assert_eq!(queued, 4);
            assert_eq!(capacity, 5);
        }
        other => panic!("expected Overloaded, got {other:?}", other = other.err()),
    }
    let stats = service.stats();
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.queued, 4, "the rejected fan-out left no residue");
}

/// Shutdown refuses new work but drains what was admitted: every ticket
/// issued before the shutdown call still completes with a full answer.
#[test]
fn shutdown_drains_admitted_tickets() {
    let corpus = build_corpus(13, 8, 20, 2, Placement::RoundRobin);
    let service = QueryService::new(
        Arc::clone(&corpus),
        Engine::with_backend(Backend::Product),
        ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            default_timeout: None,
            slowlog_capacity: 16,
        },
    );
    let tickets: Vec<_> = (0..5)
        .map(|_| service.submit("down*[c]").unwrap())
        .collect();
    let stats = service.shutdown();
    assert_eq!(stats.submitted, 5);
    for t in tickets {
        let answer = t.wait();
        assert!(!answer.timed_out);
        assert_eq!(answer.per_doc.len(), corpus.n_docs());
    }
}

/// Worker-side evaluation cost is not lost to worker-thread-local
/// counters: it rides back in `CorpusAnswer::counters` and is merged
/// into the waiting thread, so a snapshot window around a corpus query
/// observes it.
#[test]
fn worker_counters_flow_back_to_the_waiting_thread() {
    let corpus = build_corpus(17, 6, 20, 3, Placement::RoundRobin);
    let service = QueryService::new(
        corpus,
        Engine::with_backend(Backend::Product),
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            default_timeout: None,
            slowlog_capacity: 16,
        },
    );
    let before = obs::snapshot();
    let answer = service.query("down*[b]").unwrap();
    let delta = obs::delta_since(&before);
    assert!(
        answer.counters.get(Counter::EvalNanos) > 0,
        "the answer carries the workers' evaluation time"
    );
    assert!(
        delta.get(Counter::EvalNanos) >= answer.counters.get(Counter::EvalNanos),
        "worker costs were merged into the waiter's thread-local window"
    );
    assert_eq!(delta.get(Counter::CorpusRequests), 1);
    assert!(delta.get(Counter::CorpusShardEvalNanos) > 0);
    service.shutdown();
}

/// A traced query answers **identically** to an untraced one, and its
/// span tree covers the whole distributed request: the submit thread's
/// compile stages, one subtree per shard (with its queue wait), and the
/// merge pass — all offsets on one clock.
#[test]
fn traced_queries_match_untraced_and_span_the_request() {
    let corpus = build_corpus(19, 8, 30, 3, Placement::RoundRobin);
    let service = QueryService::new(
        Arc::clone(&corpus),
        Engine::with_backend(Backend::Product),
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            default_timeout: None,
            slowlog_capacity: 16,
        },
    );
    let plain = service.query("down*[b]").unwrap();
    let traced = service.query_traced("down*[b]").unwrap();
    assert_eq!(plain.total_matches, traced.total_matches);
    for ((id_a, _, set_a), (id_b, _, set_b)) in plain.per_doc.iter().zip(traced.per_doc.iter()) {
        assert_eq!(id_a, id_b);
        assert_eq!(set_a, set_b, "tracing perturbed the answer on {id_a}");
    }
    // every answer carries a distinct trace id, traced or not
    assert_ne!(plain.trace_id, traced.trace_id);
    assert!(plain.trace.is_none(), "untraced answers carry no span tree");
    let tree = traced.trace.expect("traced answer carries a span tree");
    assert_eq!(tree.trace_id, traced.trace_id);
    assert_eq!(tree.root.name, "request");
    let names: Vec<&str> = tree.root.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names[0], "prepare");
    assert_eq!(*names.last().unwrap(), "merge");
    let shard_nodes: Vec<&twx_obs::SpanNode> = tree
        .root
        .children
        .iter()
        .filter(|c| c.name.starts_with("shard"))
        .collect();
    assert_eq!(shard_nodes.len(), 3, "one subtree per shard");
    for shard in &shard_nodes {
        assert_eq!(shard.children[0].name, "queue_wait");
        // the plain run warmed the result cache, so the traced run's
        // shard work is cache lookups (misses would add `eval` spans)
        assert!(
            shard
                .children
                .iter()
                .any(|c| c.name == "result_cache" || c.name == "eval"),
            "shard subtree records per-document work spans"
        );
        // offsets share the request clock: no shard starts after the end
        assert!(shard.start_ns <= tree.root.dur_ns);
    }
    // the compile side names the pipeline stages
    let prepare = &tree.root.children[0];
    let stage_names: Vec<&str> = prepare.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(stage_names, ["parse", "simplify", "plan_cache"]);
    service.shutdown();
}

/// Every completed request lands in the latency histograms and the
/// slow-query log, tagged with its trace id.
#[test]
fn latency_histograms_and_slowlog_record_requests() {
    let corpus = build_corpus(23, 6, 20, 2, Placement::RoundRobin);
    let service = QueryService::new(
        corpus,
        Engine::with_backend(Backend::Product),
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            default_timeout: None,
            slowlog_capacity: 2,
        },
    );
    let mut ids = Vec::new();
    for q in ["down*[b]", "down*[c]", "down+[d]"] {
        ids.push(service.query(q).unwrap().trace_id);
    }
    let request = service.request_latency_histogram();
    assert_eq!(request.count(), 3, "one end-to-end sample per request");
    assert!(request.percentile(0.5) <= request.percentile(0.99));
    // 3 requests × 2 shards = 6 shard items through queue + eval
    assert_eq!(service.queue_wait_histogram().count(), 6);
    assert_eq!(service.shard_eval_histogram().count(), 6);
    let slow = service.slow_queries();
    assert_eq!(slow.len(), 2, "slowlog keeps its capacity bound");
    assert!(
        slow.windows(2).all(|w| w[0].latency >= w[1].latency),
        "slowlog is sorted slowest first"
    );
    for entry in &slow {
        assert!(
            ids.contains(&entry.trace_id),
            "slowlog entries join back to answers by trace id"
        );
        assert!(!entry.query.is_empty());
    }
    service.shutdown();
}

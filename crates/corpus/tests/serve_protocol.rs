//! NDJSON protocol-error tests for the `twx-serve` binary: malformed
//! JSON, unknown ops, missing fields, unknown labels, and oversized
//! requests must each come back as a typed `{"ok":false,"error":...}`
//! line **on the same connection** — the socket must survive every one
//! of them and still serve a healthy query afterwards.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns `twx-serve` on an ephemeral port with a small synthetic
    /// corpus and scrapes the bound address from its stdout.
    fn spawn() -> Server {
        Server::spawn_with(&[])
    }

    fn spawn_with(extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_twx-serve"))
            .args([
                "--port",
                "0",
                "--shards",
                "2",
                "--workers",
                "2",
                "--synthetic",
                "4x12",
                "--seed",
                "7",
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn twx-serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut first = String::new();
        BufReader::new(stdout)
            .read_line(&mut first)
            .expect("read listen line");
        let addr = first
            .trim()
            .strip_prefix("twx-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {first:?}"))
            .to_string();
        Server { child, addr }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(&self.addr).expect("connect")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // best effort: ask politely (reading the reply so the server's
        // write cannot race our hangup), then make sure it is gone
        if let Ok(mut s) = TcpStream::connect(&self.addr) {
            if writeln!(s, r#"{{"op":"shutdown"}}"#).is_ok() {
                let mut reply = String::new();
                let _ = BufReader::new(&s).read_line(&mut reply);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Sends one line, reads one reply line.
fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    assert!(reply.ends_with('\n'), "reply not newline-terminated");
    reply.trim().to_string()
}

#[test]
fn protocol_errors_are_typed_and_do_not_drop_the_connection() {
    let server = Server::spawn();
    let mut conn = server.connect();

    // 1. malformed JSON
    let r = roundtrip(&mut conn, "{this is not json");
    assert!(r.contains(r#""ok":false"#), "{r}");
    assert!(r.contains(r#""error":"protocol""#), "{r}");

    // 2. valid JSON, unknown op
    let r = roundtrip(&mut conn, r#"{"op":"frobnicate"}"#);
    assert!(r.contains(r#""error":"protocol""#), "{r}");

    // 3. query op missing the query string
    let r = roundtrip(&mut conn, r#"{"op":"query"}"#);
    assert!(r.contains(r#""error":"protocol""#), "{r}");

    // 4. unknown label: a typed engine error, not a dropped socket
    let r = roundtrip(&mut conn, r#"{"op":"query","query":"down[ghost]"}"#);
    assert!(r.contains(r#""ok":false"#), "{r}");
    assert!(r.contains(r#""error":"engine""#), "{r}");
    assert!(r.contains("ghost"), "{r}");

    // 5. oversized request: > 64 KiB on one line
    let huge = format!(
        r#"{{"op":"query","query":"down[{}]"}}"#,
        "x".repeat(70 * 1024)
    );
    let r = roundtrip(&mut conn, &huge);
    assert!(r.contains(r#""error":"protocol""#), "{r}");
    assert!(r.contains("exceeds"), "{r}");

    // after all five failures, the same connection still serves queries
    let r = roundtrip(&mut conn, r#"{"op":"query","query":"down*[b]"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");

    // and only the one healthy query ever reached the service — the
    // unknown-label request was refused before submission
    let r = roundtrip(&mut conn, r#"{"op":"stats"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    assert!(r.contains(r#""submitted":1"#), "{r}");
}

#[test]
fn update_errors_are_typed_and_a_commit_is_visible_on_the_same_connection() {
    let server = Server::spawn();
    let mut conn = server.connect();

    // 1. update without a doc id
    let r = roundtrip(&mut conn, r#"{"op":"update"}"#);
    assert!(r.contains(r#""error":"protocol""#), "{r}");
    assert!(r.contains("doc"), "{r}");

    // 2. doc but no edit object
    let r = roundtrip(&mut conn, r#"{"op":"update","doc":0}"#);
    assert!(r.contains(r#""error":"protocol""#), "{r}");
    assert!(r.contains("edit"), "{r}");

    // 3. unknown edit op
    let r = roundtrip(
        &mut conn,
        r#"{"op":"update","doc":0,"edit":{"op":"swap","node":1}}"#,
    );
    assert!(r.contains(r#""error":"protocol""#), "{r}");
    assert!(r.contains("relabel|insert-child|remove-subtree"), "{r}");

    // 4. unknown label: refused read-only, never interned into the
    //    corpus alphabet
    let r = roundtrip(
        &mut conn,
        r#"{"op":"update","doc":0,"edit":{"op":"relabel","node":1,"label":"ghost"}}"#,
    );
    assert!(r.contains(r#""error":"protocol""#), "{r}");
    assert!(r.contains("ghost"), "{r}");

    // 5. well-formed edit against a document that does not exist
    let r = roundtrip(
        &mut conn,
        r#"{"op":"update","doc":99,"edit":{"op":"relabel","node":0,"label":"b"}}"#,
    );
    assert!(r.contains(r#""error":"engine""#), "{r}");

    // 6. well-formed edit against a node outside the document
    let r = roundtrip(
        &mut conn,
        r#"{"op":"update","doc":0,"edit":{"op":"relabel","node":10000,"label":"b"}}"#,
    );
    assert!(r.contains(r#""error":"engine""#), "{r}");

    // after six failures the connection still commits a real edit, and
    // the receipt names the bumped version
    let r = roundtrip(
        &mut conn,
        r#"{"op":"update","doc":0,"edit":{"op":"relabel","node":0,"label":"b"}}"#,
    );
    assert!(r.contains(r#""ok":true"#), "{r}");
    assert!(r.contains(r#""version":1"#), "{r}");
    assert!(r.contains(r#""seq":1"#), "{r}");
    assert!(r.contains(r#""affected":[0,1]"#), "{r}");

    // a query on the same connection reads the new version: the per-doc
    // breakdown pins doc 0 at version 1 and the others at version 0
    let r = roundtrip(&mut conn, r#"{"op":"query","query":"down*[b]"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    assert!(r.contains(r#""doc":0,"version":1"#), "{r}");
    assert!(r.contains(r#""doc":1,"version":0"#), "{r}");

    // none of the six rejected updates reached the service
    let r = roundtrip(&mut conn, r#"{"op":"stats"}"#);
    assert!(r.contains(r#""updates":1"#), "{r}");
}

#[test]
fn observability_ops_expose_traces_histograms_and_the_slow_log() {
    let server = Server::spawn();
    let mut conn = server.connect();

    // an untraced query is tagged with a trace id but carries no tree
    let plain = roundtrip(&mut conn, r#"{"op":"query","query":"down*[b]"}"#);
    assert!(plain.contains(r#""ok":true"#), "{plain}");
    assert!(plain.contains(r#""trace_id":""#), "{plain}");
    assert!(!plain.contains(r#""trace":{"#), "{plain}");

    // the same query with "trace":true returns an inline span tree whose
    // root is the request and whose answer matches the untraced one
    let traced = roundtrip(
        &mut conn,
        r#"{"op":"query","query":"down*[b]","trace":true}"#,
    );
    assert!(traced.contains(r#""ok":true"#), "{traced}");
    assert!(traced.contains(r#""trace":{"#), "{traced}");
    assert!(traced.contains(r#""name":"request""#), "{traced}");
    assert!(traced.contains(r#""name":"merge""#), "{traced}");
    // first "matches" in the reply is the top-level total (per-doc
    // entries repeat the key later)
    let matches = |r: &str| {
        let at = r.find(r#""matches":"#).expect("matches");
        r[at + 10..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
    };
    assert_eq!(matches(&plain), matches(&traced), "traced answer differs");

    // stats now carries uptime, connection count, and latency percentiles
    let r = roundtrip(&mut conn, r#"{"op":"stats"}"#);
    assert!(r.contains(r#""uptime_s":"#), "{r}");
    assert!(r.contains(r#""connections":"#), "{r}");
    for key in [
        "latency_p50_us",
        "latency_p90_us",
        "latency_p99_us",
        "latency_p999_us",
        "latency_mean_us",
        "latency_count",
    ] {
        assert!(r.contains(&format!(r#""{key}":"#)), "missing {key}: {r}");
    }
    assert!(r.contains(r#""latency_count":2"#), "{r}");

    // the metrics op renders a Prometheus text exposition with the
    // service histograms and the server gauges
    let r = roundtrip(&mut conn, r#"{"op":"metrics"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    assert!(r.contains("# TYPE twx_service_request_ns histogram"), "{r}");
    assert!(r.contains("twx_service_request_ns_count 2"), "{r}");
    assert!(r.contains("le=\\\"+Inf\\\""), "{r}");
    assert!(r.contains("twx_serve_connections_total"), "{r}");
    assert!(r.contains("twx_serve_uptime_seconds"), "{r}");

    // the slow log retains both requests, slowest first, and its trace
    // ids join back to the replies above
    let r = roundtrip(&mut conn, r#"{"op":"slowlog"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    assert!(r.contains(r#""entries":["#), "{r}");
    assert!(r.contains(r#""query":"down*[b]""#), "{r}");
    assert!(r.contains(r#""latency_us":"#), "{r}");
    assert!(r.contains(r#""profile":{"#), "{r}");
    let id_of = |reply: &str| {
        let at = reply.find(r#""trace_id":""#).expect("trace_id") + 12;
        reply[at..at + 16].to_string()
    };
    assert!(r.contains(&id_of(&plain)), "slowlog missing plain id: {r}");
    assert!(
        r.contains(&id_of(&traced)),
        "slowlog missing traced id: {r}"
    );
}

#[test]
fn snapshot_op_requires_a_store_and_a_store_survives_a_kill() {
    // storeless server: the op is understood but refused with a typed
    // engine error, and the connection survives
    let server = Server::spawn();
    let mut conn = server.connect();
    let r = roundtrip(&mut conn, r#"{"op":"snapshot"}"#);
    assert!(r.contains(r#""ok":false"#), "{r}");
    assert!(r.contains(r#""error":"engine""#), "{r}");
    assert!(r.contains("--store"), "{r}");
    let r = roundtrip(&mut conn, r#"{"op":"query","query":"down*[b]"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    drop(conn);
    drop(server);

    // store-backed server: commit an edit, snapshot, note the answer,
    // then kill -9 (no graceful shutdown) and restart on the same dir —
    // the recovered corpus must answer identically
    let dir = std::env::temp_dir().join(format!("twx-serve-test-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_str().unwrap().to_string();

    let mut server = Server::spawn_with(&["--store", &dir_arg]);
    let mut conn = server.connect();
    let r = roundtrip(
        &mut conn,
        r#"{"op":"update","doc":0,"edit":{"op":"relabel","node":0,"label":"b"}}"#,
    );
    assert!(r.contains(r#""ok":true"#), "{r}");
    let r = roundtrip(&mut conn, r#"{"op":"snapshot"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    assert!(r.contains(r#""seq":1"#), "{r}");
    assert!(r.contains(r#""snapshot_bytes":"#), "{r}");
    let before = roundtrip(&mut conn, r#"{"op":"query","query":"down*[b]"}"#);
    assert!(before.contains(r#""ok":true"#), "{before}");
    drop(conn);
    server.child.kill().expect("kill");
    server.child.wait().expect("wait");

    let server = Server::spawn_with(&["--store", &dir_arg]);
    let mut conn = server.connect();
    let after = roundtrip(&mut conn, r#"{"op":"query","query":"down*[b]"}"#);
    // the answer prefix (total matches + per-doc counts and versions) is
    // deterministic; latency and trace id legitimately differ
    let answer = |r: &str| r[..r.find(r#""timed_out""#).expect("timed_out")].to_string();
    assert_eq!(
        answer(&before),
        answer(&after),
        "recovered corpus answers differently"
    );
    drop(conn);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

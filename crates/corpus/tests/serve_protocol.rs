//! Protocol matrix for the `twx-serve` binary, run over **both wire
//! framings** — NDJSON lines and length-prefixed binary frames, which
//! share a port and are negotiated by the first byte of each
//! connection.
//!
//! Every protocol case (malformed JSON, unknown ops, missing fields,
//! unknown labels, oversized requests, on-the-wire garbage) must come
//! back as a typed `{"ok":false,"error":...}` reply **on the same
//! connection** — the socket survives every failure and still serves a
//! healthy query afterwards. On top of the per-op matrix: pipelining
//! (many requests written before any reply is read, replies in request
//! order) and slow-reader backpressure (a connection that refuses to
//! read its replies is parked without affecting other connections).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use twx_netio::frame::{encode_frame, HEADER_BYTES, MAGIC};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Framing {
    Ndjson,
    Binary,
}

impl Framing {
    fn other(self) -> Framing {
        match self {
            Framing::Ndjson => Framing::Binary,
            Framing::Binary => Framing::Ndjson,
        }
    }
}

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns `twx-serve` on an ephemeral port with a small synthetic
    /// corpus and scrapes the bound address from its stdout.
    fn spawn() -> Server {
        Server::spawn_with(&[])
    }

    fn spawn_with(extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_twx-serve"))
            .args([
                "--port",
                "0",
                "--shards",
                "2",
                "--workers",
                "2",
                "--synthetic",
                "4x12",
                "--seed",
                "7",
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn twx-serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut first = String::new();
        BufReader::new(stdout)
            .read_line(&mut first)
            .expect("read listen line");
        let addr = first
            .trim()
            .strip_prefix("twx-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {first:?}"))
            .to_string();
        Server { child, addr }
    }

    fn connect(&self, framing: Framing) -> Conn {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Conn {
            stream,
            reader,
            framing,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // best effort: ask politely (reading the reply so the server's
        // write cannot race our hangup), then make sure it is gone
        if let Ok(mut s) = TcpStream::connect(&self.addr) {
            if writeln!(s, r#"{{"op":"shutdown"}}"#).is_ok() {
                let mut reply = String::new();
                let _ = BufReader::new(&s).read_line(&mut reply);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One client connection speaking a fixed framing.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    framing: Framing,
}

impl Conn {
    /// Sends one request payload, framed per the connection's framing.
    fn send(&mut self, payload: &str) {
        match self.framing {
            Framing::Ndjson => writeln!(self.stream, "{payload}").expect("send"),
            Framing::Binary => self
                .stream
                .write_all(&encode_frame(payload.as_bytes()))
                .expect("send"),
        }
        self.stream.flush().expect("flush");
    }

    /// Raw bytes, bypassing the framing (for garbage-injection cases).
    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send raw");
        self.stream.flush().expect("flush");
    }

    /// Reads one reply payload.
    fn recv(&mut self) -> String {
        match self.framing {
            Framing::Ndjson => {
                let mut reply = String::new();
                self.reader.read_line(&mut reply).expect("reply");
                assert!(reply.ends_with('\n'), "reply not newline-terminated");
                reply.trim().to_string()
            }
            Framing::Binary => {
                let mut header = [0u8; HEADER_BYTES];
                self.reader.read_exact(&mut header).expect("frame header");
                assert_eq!(&header[..4], &MAGIC, "reply frame magic");
                let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
                let mut payload = vec![0u8; len];
                self.reader.read_exact(&mut payload).expect("frame payload");
                String::from_utf8(payload).expect("utf-8 reply")
            }
        }
    }

    fn roundtrip(&mut self, payload: &str) -> String {
        self.send(payload);
        self.recv()
    }
}

fn protocol_errors_do_not_drop_the_connection(framing: Framing) {
    let server = Server::spawn();
    let mut conn = server.connect(framing);

    // 1. malformed JSON
    let r = conn.roundtrip("{this is not json");
    assert!(r.contains(r#""ok":false"#), "{r}");
    assert!(r.contains(r#""error":"protocol""#), "{r}");

    // 2. valid JSON, unknown op
    let r = conn.roundtrip(r#"{"op":"frobnicate"}"#);
    assert!(r.contains(r#""error":"protocol""#), "{r}");

    // 3. garbage on the wire: skipped (binary resyncs on the magic,
    //    NDJSON fails the line's JSON parse), answered typed, survived
    match framing {
        Framing::Ndjson => conn.send_raw(b"\x02\x07 utterly mangled\n"),
        Framing::Binary => conn.send_raw(b"\x02\x07 utterly mangled"),
    }
    let r = conn.recv();
    assert!(r.contains(r#""error":"protocol""#), "{r}");

    // 4. query op missing the query string
    let r = conn.roundtrip(r#"{"op":"query"}"#);
    assert!(r.contains(r#""error":"protocol""#), "{r}");

    // 5. unknown label: a typed engine error, not a dropped socket
    let r = conn.roundtrip(r#"{"op":"query","query":"down[ghost]"}"#);
    assert!(r.contains(r#""ok":false"#), "{r}");
    assert!(r.contains(r#""error":"engine""#), "{r}");
    assert!(r.contains("ghost"), "{r}");

    // 6. oversized request: > 64 KiB in one line / one frame
    let huge = format!(
        r#"{{"op":"query","query":"down[{}]"}}"#,
        "x".repeat(70 * 1024)
    );
    let r = conn.roundtrip(&huge);
    assert!(r.contains(r#""error":"protocol""#), "{r}");
    assert!(r.contains("exceeds"), "{r}");

    // after all six failures, the same connection still serves queries
    let r = conn.roundtrip(r#"{"op":"query","query":"down*[b]"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");

    // and only the one healthy query ever reached the service — every
    // refused request was answered before submission
    let r = conn.roundtrip(r#"{"op":"stats"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    assert!(r.contains(r#""submitted":1"#), "{r}");
}

#[test]
fn protocol_errors_are_typed_ndjson() {
    protocol_errors_do_not_drop_the_connection(Framing::Ndjson);
}

#[test]
fn protocol_errors_are_typed_binary() {
    protocol_errors_do_not_drop_the_connection(Framing::Binary);
}

fn update_errors_and_commit_visibility(framing: Framing) {
    let server = Server::spawn();
    let mut conn = server.connect(framing);

    // 1. update without a doc id
    let r = conn.roundtrip(r#"{"op":"update"}"#);
    assert!(r.contains(r#""error":"protocol""#), "{r}");
    assert!(r.contains("doc"), "{r}");

    // 2. doc but no edit object
    let r = conn.roundtrip(r#"{"op":"update","doc":0}"#);
    assert!(r.contains(r#""error":"protocol""#), "{r}");
    assert!(r.contains("edit"), "{r}");

    // 3. unknown edit op
    let r = conn.roundtrip(r#"{"op":"update","doc":0,"edit":{"op":"swap","node":1}}"#);
    assert!(r.contains(r#""error":"protocol""#), "{r}");
    assert!(r.contains("relabel|insert-child|remove-subtree"), "{r}");

    // 4. unknown label: refused read-only, never interned into the
    //    corpus alphabet
    let r = conn
        .roundtrip(r#"{"op":"update","doc":0,"edit":{"op":"relabel","node":1,"label":"ghost"}}"#);
    assert!(r.contains(r#""error":"protocol""#), "{r}");
    assert!(r.contains("ghost"), "{r}");

    // 5. well-formed edit against a document that does not exist
    let r =
        conn.roundtrip(r#"{"op":"update","doc":99,"edit":{"op":"relabel","node":0,"label":"b"}}"#);
    assert!(r.contains(r#""error":"engine""#), "{r}");

    // 6. well-formed edit against a node outside the document
    let r = conn
        .roundtrip(r#"{"op":"update","doc":0,"edit":{"op":"relabel","node":10000,"label":"b"}}"#);
    assert!(r.contains(r#""error":"engine""#), "{r}");

    // after six failures the connection still commits a real edit, and
    // the receipt names the bumped version
    let r =
        conn.roundtrip(r#"{"op":"update","doc":0,"edit":{"op":"relabel","node":0,"label":"b"}}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    assert!(r.contains(r#""version":1"#), "{r}");
    assert!(r.contains(r#""seq":1"#), "{r}");
    assert!(r.contains(r#""affected":[0,1]"#), "{r}");

    // a query on the same connection reads the new version: the per-doc
    // breakdown pins doc 0 at version 1 and the others at version 0
    let r = conn.roundtrip(r#"{"op":"query","query":"down*[b]"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    assert!(r.contains(r#""doc":0,"version":1"#), "{r}");
    assert!(r.contains(r#""doc":1,"version":0"#), "{r}");

    // none of the six rejected updates reached the service
    let r = conn.roundtrip(r#"{"op":"stats"}"#);
    assert!(r.contains(r#""updates":1"#), "{r}");
}

#[test]
fn update_errors_are_typed_ndjson() {
    update_errors_and_commit_visibility(Framing::Ndjson);
}

#[test]
fn update_errors_are_typed_binary() {
    update_errors_and_commit_visibility(Framing::Binary);
}

fn observability_ops(framing: Framing) {
    let server = Server::spawn();
    let mut conn = server.connect(framing);

    // an untraced query is tagged with a trace id but carries no tree
    let plain = conn.roundtrip(r#"{"op":"query","query":"down*[b]"}"#);
    assert!(plain.contains(r#""ok":true"#), "{plain}");
    assert!(plain.contains(r#""trace_id":""#), "{plain}");
    assert!(!plain.contains(r#""trace":{"#), "{plain}");

    // the same query with "trace":true returns an inline span tree whose
    // root is the request and whose answer matches the untraced one
    let traced = conn.roundtrip(r#"{"op":"query","query":"down*[b]","trace":true}"#);
    assert!(traced.contains(r#""ok":true"#), "{traced}");
    assert!(traced.contains(r#""trace":{"#), "{traced}");
    assert!(traced.contains(r#""name":"request""#), "{traced}");
    assert!(traced.contains(r#""name":"merge""#), "{traced}");
    // first "matches" in the reply is the top-level total (per-doc
    // entries repeat the key later)
    let matches = |r: &str| {
        let at = r.find(r#""matches":"#).expect("matches");
        r[at + 10..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
    };
    assert_eq!(matches(&plain), matches(&traced), "traced answer differs");

    // stats carries uptime, connection counts, frame counters, and
    // latency percentiles
    let r = conn.roundtrip(r#"{"op":"stats"}"#);
    assert!(r.contains(r#""uptime_s":"#), "{r}");
    assert!(r.contains(r#""connections":"#), "{r}");
    assert!(r.contains(r#""conns_open":1"#), "{r}");
    assert!(r.contains(r#""conns_rejected":0"#), "{r}");
    assert!(r.contains(r#""max_conns":"#), "{r}");
    assert!(r.contains(r#""frames_rx":"#), "{r}");
    assert!(r.contains(r#""frames_tx":"#), "{r}");
    assert!(r.contains(r#""backpressure_stalls":"#), "{r}");
    assert!(r.contains(r#""eval_threads":"#), "{r}");
    for key in [
        "latency_p50_us",
        "latency_p90_us",
        "latency_p99_us",
        "latency_p999_us",
        "latency_mean_us",
        "latency_count",
    ] {
        assert!(r.contains(&format!(r#""{key}":"#)), "missing {key}: {r}");
    }
    assert!(r.contains(r#""latency_count":2"#), "{r}");

    // the metrics op renders a Prometheus text exposition with the
    // service histograms and the connection-tier gauges
    let r = conn.roundtrip(r#"{"op":"metrics"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    assert!(r.contains("# TYPE twx_service_request_ns histogram"), "{r}");
    assert!(r.contains("twx_service_request_ns_count 2"), "{r}");
    assert!(r.contains("le=\\\"+Inf\\\""), "{r}");
    assert!(r.contains("twx_serve_connections_total"), "{r}");
    assert!(r.contains("twx_serve_uptime_seconds"), "{r}");
    assert!(r.contains("twx_serve_conns_open"), "{r}");
    assert!(r.contains("twx_serve_frames_rx_total"), "{r}");
    assert!(r.contains("twx_serve_backpressure_stalls_total"), "{r}");

    // the slow log retains both requests, slowest first, and its trace
    // ids join back to the replies above
    let r = conn.roundtrip(r#"{"op":"slowlog"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    assert!(r.contains(r#""entries":["#), "{r}");
    assert!(r.contains(r#""query":"down*[b]""#), "{r}");
    assert!(r.contains(r#""latency_us":"#), "{r}");
    assert!(r.contains(r#""profile":{"#), "{r}");
    let id_of = |reply: &str| {
        let at = reply.find(r#""trace_id":""#).expect("trace_id") + 12;
        reply[at..at + 16].to_string()
    };
    assert!(r.contains(&id_of(&plain)), "slowlog missing plain id: {r}");
    assert!(
        r.contains(&id_of(&traced)),
        "slowlog missing traced id: {r}"
    );
}

#[test]
fn observability_ops_ndjson() {
    observability_ops(Framing::Ndjson);
}

#[test]
fn observability_ops_binary() {
    observability_ops(Framing::Binary);
}

fn snapshot_and_kill_recovery(framing: Framing) {
    // storeless server: the op is understood but refused with a typed
    // engine error, and the connection survives
    let server = Server::spawn();
    let mut conn = server.connect(framing);
    let r = conn.roundtrip(r#"{"op":"snapshot"}"#);
    assert!(r.contains(r#""ok":false"#), "{r}");
    assert!(r.contains(r#""error":"engine""#), "{r}");
    assert!(r.contains("--store"), "{r}");
    let r = conn.roundtrip(r#"{"op":"query","query":"down*[b]"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    drop(conn);
    drop(server);

    // store-backed server: commit an edit, snapshot, note the answer,
    // then kill -9 (no graceful shutdown) and restart on the same dir —
    // the recovered corpus must answer identically
    let dir = std::env::temp_dir().join(format!(
        "twx-serve-test-store-{}-{framing:?}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_str().unwrap().to_string();

    let mut server = Server::spawn_with(&["--store", &dir_arg]);
    let mut conn = server.connect(framing);
    let r =
        conn.roundtrip(r#"{"op":"update","doc":0,"edit":{"op":"relabel","node":0,"label":"b"}}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    let r = conn.roundtrip(r#"{"op":"snapshot"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    assert!(r.contains(r#""seq":1"#), "{r}");
    assert!(r.contains(r#""snapshot_bytes":"#), "{r}");
    let before = conn.roundtrip(r#"{"op":"query","query":"down*[b]"}"#);
    assert!(before.contains(r#""ok":true"#), "{before}");
    drop(conn);
    server.child.kill().expect("kill");
    server.child.wait().expect("wait");

    let server = Server::spawn_with(&["--store", &dir_arg]);
    let mut conn = server.connect(framing);
    let after = conn.roundtrip(r#"{"op":"query","query":"down*[b]"}"#);
    // the answer prefix (total matches + per-doc counts and versions) is
    // deterministic; latency and trace id legitimately differ
    let answer = |r: &str| r[..r.find(r#""timed_out""#).expect("timed_out")].to_string();
    assert_eq!(
        answer(&before),
        answer(&after),
        "recovered corpus answers differently"
    );
    drop(conn);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_and_kill_recovery_ndjson() {
    snapshot_and_kill_recovery(Framing::Ndjson);
}

#[test]
fn snapshot_and_kill_recovery_binary() {
    snapshot_and_kill_recovery(Framing::Binary);
}

/// Pipelining: N requests written before any reply is read; replies come
/// back in request order. Even-index requests use an unknown label that
/// echoes its index (a typed engine error handled off-service), odd ones
/// are healthy queries — so reply `i` is distinguishable and order
/// violations cannot cancel out.
fn pipelined_requests_reply_in_order(framing: Framing) {
    const N: usize = 64;
    let server = Server::spawn();
    let mut conn = server.connect(framing);

    // a control connection on the *other* framing proves the two wire
    // formats coexist on one server
    let mut control = server.connect(framing.other());

    let mut batch = Vec::new();
    for i in 0..N {
        let req = if i % 2 == 0 {
            format!(r#"{{"op":"query","query":"down[ghost{i}]"}}"#)
        } else {
            r#"{"op":"query","query":"down*[b]"}"#.to_string()
        };
        match framing {
            Framing::Ndjson => {
                batch.extend_from_slice(req.as_bytes());
                batch.push(b'\n');
            }
            Framing::Binary => batch.extend_from_slice(&encode_frame(req.as_bytes())),
        }
    }
    // the whole pipeline in one write, no reads in between
    conn.send_raw(&batch);

    let r = control.roundtrip(r#"{"op":"stats"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");

    for i in 0..N {
        let r = conn.recv();
        if i % 2 == 0 {
            assert!(r.contains(r#""error":"engine""#), "reply {i}: {r}");
            assert!(
                r.contains(&format!("ghost{i}")),
                "reply {i} out of order: {r}"
            );
        } else {
            assert!(r.contains(r#""ok":true"#), "reply {i}: {r}");
        }
    }

    // exactly the N/2 healthy queries reached the service
    let r = conn.roundtrip(r#"{"op":"stats"}"#);
    assert!(r.contains(&format!(r#""submitted":{}"#, N / 2)), "{r}");
}

#[test]
fn pipelined_requests_reply_in_order_ndjson() {
    pipelined_requests_reply_in_order(Framing::Ndjson);
}

#[test]
fn pipelined_requests_reply_in_order_binary() {
    pipelined_requests_reply_in_order(Framing::Binary);
}

/// Slow-reader backpressure: a client floods requests and refuses to
/// read replies. The server must park that connection (counted in
/// `backpressure_stalls`), keep serving other connections, and deliver
/// every reply in order once the slow reader finally drains.
fn slow_reader_is_parked_not_fatal(framing: Framing) {
    const N: usize = 600;
    // a tiny backpressure budget so reply buffering trips immediately
    let server = Server::spawn_with(&["--backpressure-bytes", "4096"]);
    let mut slow = server.connect(framing);
    // shrink the slow client's receive window so the kernel cannot mask
    // its refusal to read
    twx_netio::set_recv_buffer(&slow.stream, 4096).expect("rcvbuf");

    let mut batch = Vec::new();
    for i in 0..N {
        let req = format!(r#"{{"op":"query","query":"down[ghost{i}]"}}"#);
        match framing {
            Framing::Ndjson => {
                batch.extend_from_slice(req.as_bytes());
                batch.push(b'\n');
            }
            Framing::Binary => batch.extend_from_slice(&encode_frame(req.as_bytes())),
        }
    }
    slow.send_raw(&batch);
    // give the loop time to ingest the flood and park the connection
    std::thread::sleep(std::time::Duration::from_millis(300));

    // a second connection stays fully responsive while the flood sits
    let mut other = server.connect(framing);
    let r = other.roundtrip(r#"{"op":"query","query":"down*[b]"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    let r = other.roundtrip(r#"{"op":"stats"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
    assert!(r.contains(r#""conns_open":2"#), "{r}");
    let stalls: u64 = {
        let at = r.find(r#""backpressure_stalls":"#).expect("stalls field") + 22;
        r[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("stalls number")
    };
    assert!(stalls >= 1, "no backpressure stall recorded: {r}");

    // the slow reader finally drains: every reply present, in order
    for i in 0..N {
        let r = slow.recv();
        assert!(
            r.contains(&format!("ghost{i}")),
            "reply {i} out of order: {r}"
        );
    }
    // and the parked connection came back to life
    let r = slow.roundtrip(r#"{"op":"query","query":"down*[b]"}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");
}

#[test]
fn slow_reader_backpressure_ndjson() {
    slow_reader_is_parked_not_fatal(Framing::Ndjson);
}

#[test]
fn slow_reader_backpressure_binary() {
    slow_reader_is_parked_not_fatal(Framing::Binary);
}

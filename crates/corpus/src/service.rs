//! The concurrent query service: a fixed worker pool executing
//! `(prepared plan, shard)` work items with admission control, deadlines,
//! and latency accounting.
//!
//! # Lifecycle of a request
//!
//! 1. [`QueryService::submit`] compiles the query once through
//!    [`Engine::prepare_in`] against the corpus catalog — the plan cache
//!    makes repeat queries a lookup — and fans the `Arc<Prepared>` plan
//!    into one work item per shard.
//! 2. **Admission** is all-or-nothing and non-blocking: if the bounded
//!    queue cannot take the whole fan-out, the request is rejected with
//!    [`ServiceError::Overloaded`] (counted as `corpus_rejected`) rather
//!    than queueing without bound.
//! 3. Workers pop items, evaluate the plan over every document of the
//!    shard from its root, and check the request **deadline** between
//!    documents: on expiry the rest of the shard is skipped and the
//!    answer is marked partial (counted as `corpus_timeouts`).
//! 4. The caller blocks on [`Ticket::wait`], which assembles the
//!    [`CorpusAnswer`]: per-document node sets in `DocId` order,
//!    per-shard timings (queue wait, eval time), and the merged
//!    observability counters of every worker — drained on the worker
//!    threads and folded into the waiting thread via
//!    [`obs::merge_local`], so a `snapshot`/`delta_since` window around
//!    a corpus query sees the whole distributed cost.
//!
//! **Shutdown** is graceful: [`QueryService::shutdown`] (or drop) closes
//! the queue — further submissions fail with [`ServiceError::ShutDown`]
//! — and joins the workers, which first drain every admitted item, so
//! every issued [`Ticket`] still completes.

use crate::queue::{BoundedQueue, PushError};
use crate::slowlog::{SlowLog, SlowLogEntry};
use crate::store::{Corpus, CorpusSnapshot, DocId, UpdateError, UpdateReceipt};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use treewalk::{Backend, Engine, EngineError, Prepared, ResultCache, ResultCacheStats};
use twx_obs::{self as obs, AtomicHistogram, Counter, Counters, SpanNode, SpanTree, TraceId};
use twx_xtree::edit::{DocVersion, Edit};
use twx_xtree::NodeSet;

/// Tuning knobs for a [`QueryService`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads. `0` is a test-only "manual" mode: submissions are
    /// admitted (or rejected) but nothing executes, so tickets never
    /// complete — useful for deterministic admission-control tests.
    pub workers: usize,
    /// Maximum queued work items (shard tasks, not requests). A request
    /// over an `N`-shard corpus needs `N` free slots to be admitted, so
    /// keep `queue_capacity >= n_shards`.
    pub queue_capacity: usize,
    /// Deadline applied to requests submitted without an explicit
    /// timeout. `None` means no deadline.
    pub default_timeout: Option<Duration>,
    /// Worst requests retained by the slow-query log (0 disables it).
    pub slowlog_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            queue_capacity: 256,
            default_timeout: None,
            slowlog_capacity: 16,
        }
    }
}

/// Sizes the engine's per-evaluation thread pool from the host core
/// count and the number of evaluations that run concurrently (the
/// service's worker pool): each of `workers` requests evaluating at
/// once gets an equal share of `host_cores`, never less than one
/// thread. With one worker the whole machine goes to intra-query
/// parallelism; with as many workers as cores, evaluation stays serial
/// and the parallelism lives across requests instead.
pub fn default_eval_threads(host_cores: usize, workers: usize) -> usize {
    (host_cores / workers.max(1)).max(1)
}

/// An error from [`QueryService::submit`].
#[derive(Debug)]
pub enum ServiceError {
    /// Admission control refused the request: the queue cannot take the
    /// request's shard fan-out. Back off and retry; nothing was queued.
    Overloaded {
        /// Work items queued at the time of refusal.
        queued: usize,
        /// The queue capacity bound.
        capacity: usize,
    },
    /// The service is shutting down (or has shut down).
    ShutDown,
    /// The query did not compile.
    Engine(EngineError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { queued, capacity } => write!(
                f,
                "overloaded: admission queue at {queued}/{capacity} cannot take the request"
            ),
            ServiceError::ShutDown => write!(f, "service is shut down"),
            ServiceError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> ServiceError {
        ServiceError::Engine(e)
    }
}

/// Where one shard's time went, as measured by the worker that ran it.
#[derive(Clone, Debug)]
pub struct ShardTiming {
    /// Shard index.
    pub shard: usize,
    /// Documents evaluated (excludes documents skipped by the deadline).
    pub docs: usize,
    /// Documents skipped because the deadline expired.
    pub skipped_docs: usize,
    /// Time the work item sat in the queue before a worker picked it up.
    pub queue_wait: Duration,
    /// Time the worker spent evaluating the shard.
    pub eval: Duration,
    /// Whether the deadline expired inside this shard.
    pub timed_out: bool,
}

/// The aggregated answer to a corpus query.
#[derive(Debug)]
pub struct CorpusAnswer {
    /// The query text as submitted.
    pub query: String,
    /// The backend the plan was compiled for.
    pub backend: Backend,
    /// Per-document answers in `DocId` order, each with the
    /// [`DocVersion`] it was evaluated against (the version pinned in
    /// the request's snapshot). On a timed-out request this holds only
    /// the documents evaluated before the deadline.
    pub per_doc: Vec<(DocId, DocVersion, NodeSet)>,
    /// Total matched nodes across all documents.
    pub total_matches: u64,
    /// Per-shard timings (index order).
    pub shards: Vec<ShardTiming>,
    /// Whether any shard hit the deadline (the answer is partial).
    pub timed_out: bool,
    /// The commit sequence number of the snapshot this answer was
    /// evaluated against.
    pub snapshot_seq: u64,
    /// **Stale**: at least one commit landed after this request pinned
    /// its snapshot, so the answer — while exact for its snapshot — no
    /// longer reflects the newest corpus state.
    pub stale: bool,
    /// Submit-to-completion latency as seen by the waiter.
    pub latency: Duration,
    /// Observability counters accumulated by the workers for this
    /// request (also merged into the waiting thread's live counters).
    pub counters: Counters,
    /// The request's trace id — every answer carries one (it also tags
    /// the slow-query log entry), whether or not a trace was collected.
    pub trace_id: TraceId,
    /// The span tree of the request, present only when submitted
    /// through a traced entry point ([`QueryService::submit_traced`] /
    /// [`QueryService::query_traced`]) with instrumentation enabled.
    pub trace: Option<SpanTree>,
}

/// Point-in-time service statistics (atomics, no locks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests submitted (admitted or not).
    pub submitted: u64,
    /// Requests fully aggregated by a waiter.
    pub completed: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Requests that completed with a partial (timed-out) answer.
    pub timeouts: u64,
    /// Edits committed through [`QueryService::update`].
    pub updates: u64,
    /// Answers flagged stale (a commit landed after their snapshot).
    pub stale_answers: u64,
    /// Total submit-to-completion latency of completed requests, in
    /// nanoseconds (divide by `completed` for the mean).
    pub latency_nanos_total: u64,
    /// Work items currently queued.
    pub queued: usize,
    /// The admission bound.
    pub queue_capacity: usize,
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Per-evaluation worker-thread bound of the engine
    /// ([`treewalk::Engine::parallelism`]) — intra-query parallelism,
    /// multiplying on top of the worker pool.
    pub eval_threads: usize,
}

#[derive(Default)]
struct StatsInner {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    updates: AtomicU64,
    stale_answers: AtomicU64,
    latency_nanos_total: AtomicU64,
}

/// What a worker produced for one shard.
struct ShardOutcome {
    per_doc: Vec<(DocId, DocVersion, NodeSet)>,
    timing: ShardTiming,
    counters: Counters,
    /// The worker's span subtree for this shard (traced requests only).
    trace: Option<SpanNode>,
}

struct RequestState {
    remaining: usize,
    outcomes: Vec<Option<ShardOutcome>>,
}

struct RequestShared {
    state: Mutex<RequestState>,
    done: Condvar,
}

impl RequestShared {
    fn new(n_shards: usize) -> RequestShared {
        RequestShared {
            state: Mutex::new(RequestState {
                remaining: n_shards,
                outcomes: (0..n_shards).map(|_| None).collect(),
            }),
            done: Condvar::new(),
        }
    }
}

struct WorkItem {
    prepared: Arc<Prepared>,
    // the consistent read view this request evaluates against — shared
    // by every shard item of the request, pinned at submit time
    snapshot: Arc<CorpusSnapshot>,
    shard: usize,
    deadline: Option<Instant>,
    enqueued: Instant,
    request: Arc<RequestShared>,
    /// `Some` iff the request wants a span tree: the worker collects a
    /// per-shard trace rooted at the carried origin instant (the submit
    /// time, so its offsets share the submit thread's clock) and ships
    /// it back in the outcome.
    trace: Option<(TraceId, Instant)>,
}

/// A handle to an admitted request; [`Ticket::wait`] blocks until every
/// shard has reported and returns the aggregated answer.
#[must_use = "an admitted request completes regardless; wait() collects it"]
pub struct Ticket {
    request: Arc<RequestShared>,
    query: String,
    backend: Backend,
    submitted: Instant,
    stats: Arc<StatsInner>,
    corpus: Arc<Corpus>,
    snapshot_seq: u64,
    trace_id: TraceId,
    /// The submit thread's compile-side span (`prepare` with its parse/
    /// simplify/plan_cache children) — `Some` iff the request is traced
    /// and instrumentation is on.
    prepare_span: Option<SpanNode>,
    traced: bool,
    hist_request: Arc<AtomicHistogram>,
    slowlog: Arc<SlowLog>,
}

impl Ticket {
    /// The trace id the eventual [`CorpusAnswer`] will carry.
    pub fn trace_id(&self) -> TraceId {
        self.trace_id
    }

    /// Blocks until the request completes and aggregates the answer.
    pub fn wait(self) -> CorpusAnswer {
        let mut st = self.request.state.lock().expect("request poisoned");
        while st.remaining > 0 {
            st = self.request.done.wait(st).expect("request poisoned");
        }
        let merge_started = self.submitted.elapsed().as_nanos() as u64;
        let merge_clock = obs::Clock::start();
        let mut per_doc = Vec::new();
        let mut shards = Vec::with_capacity(st.outcomes.len());
        let mut counters = Counters::default();
        let mut shard_traces = Vec::new();
        let mut timed_out = false;
        for outcome in st.outcomes.iter_mut() {
            let o = outcome.take().expect("completed shard has an outcome");
            per_doc.extend(o.per_doc);
            counters.merge(&o.counters);
            timed_out |= o.timing.timed_out;
            shards.push(o.timing);
            shard_traces.extend(o.trace);
        }
        drop(st);
        per_doc.sort_by_key(|(id, _, _)| *id);
        shards.sort_by_key(|t| t.shard);
        shard_traces.sort_by_key(|n| n.start_ns);
        // fold worker costs into the waiting thread's live counters so
        // they show up in any open snapshot window
        obs::merge_local(&counters);
        if timed_out {
            obs::incr(Counter::CorpusTimeouts);
            self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
        }
        let latency = self.submitted.elapsed();
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        self.stats
            .latency_nanos_total
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
        self.hist_request.record(latency.as_nanos() as u64);
        // a commit after our pin makes this answer stale (still exact
        // for the snapshot it was computed against)
        let stale = self.corpus.seq() > self.snapshot_seq;
        if stale {
            obs::incr(Counter::CorpusStaleAnswers);
            self.stats.stale_answers.fetch_add(1, Ordering::Relaxed);
        }
        let total_matches = per_doc.iter().map(|(_, _, s)| s.count() as u64).sum();
        // the span tree: submit-side prepare, per-shard worker subtrees
        // (all on the submit instant's clock), and this merge pass
        let trace = if self.traced && obs::ENABLED {
            let mut root = SpanNode {
                name: "request".to_string(),
                start_ns: 0,
                dur_ns: latency.as_nanos() as u64,
                counters: counters.clone(),
                children: Vec::new(),
            };
            root.children.extend(self.prepare_span.clone());
            root.children.extend(shard_traces);
            root.push_child(SpanNode::leaf(
                "merge",
                merge_started,
                merge_clock.elapsed_nanos(),
            ));
            Some(SpanTree {
                trace_id: self.trace_id,
                root,
            })
        } else {
            None
        };
        self.slowlog.record(SlowLogEntry {
            trace_id: self.trace_id,
            query: self.query.clone(),
            backend: self.backend,
            latency,
            timed_out,
            stale,
            total_matches,
            counters: counters.clone(),
        });
        CorpusAnswer {
            query: self.query,
            backend: self.backend,
            total_matches,
            per_doc,
            shards,
            timed_out,
            snapshot_seq: self.snapshot_seq,
            stale,
            latency,
            counters,
            trace_id: self.trace_id,
            trace,
        }
    }
}

/// The per-service latency series, shared by workers and waiters and
/// registered in the global [`obs::metrics`] registry (a re-constructed
/// service re-binds the registry keys to its fresh handles).
struct LatencySeries {
    /// Submit-to-completion, recorded by the waiter.
    request: Arc<AtomicHistogram>,
    /// Admission-to-pickup per shard item, recorded by workers.
    queue_wait: Arc<AtomicHistogram>,
    /// Per-shard evaluation time, recorded by workers.
    shard_eval: Arc<AtomicHistogram>,
}

impl LatencySeries {
    fn registered() -> LatencySeries {
        let reg = obs::metrics::global();
        LatencySeries {
            request: reg.histogram("twx_service_request_ns", &[]),
            queue_wait: reg.histogram("twx_service_queue_wait_ns", &[]),
            shard_eval: reg.histogram("twx_service_shard_eval_ns", &[]),
        }
    }
}

/// The concurrent corpus query service (see the [module docs](self)).
pub struct QueryService {
    corpus: Arc<Corpus>,
    engine: Engine,
    results: Arc<ResultCache>,
    queue: Arc<BoundedQueue<WorkItem>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<StatsInner>,
    series: LatencySeries,
    slowlog: Arc<SlowLog>,
    config: ServiceConfig,
}

impl QueryService {
    /// Starts a service over `corpus`, compiling through `engine` (which
    /// fixes the backend and shares its plan cache).
    pub fn new(corpus: Arc<Corpus>, engine: Engine, config: ServiceConfig) -> QueryService {
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let results = Arc::new(ResultCache::default());
        let series = LatencySeries::registered();
        let slowlog = Arc::new(SlowLog::new(config.slowlog_capacity));
        let workers = (0..config.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let results = Arc::clone(&results);
                let queue_wait = Arc::clone(&series.queue_wait);
                let shard_eval = Arc::clone(&series.shard_eval);
                std::thread::Builder::new()
                    .name(format!("twx-corpus-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &results, &queue_wait, &shard_eval))
                    .expect("spawn worker")
            })
            .collect();
        QueryService {
            corpus,
            engine,
            results,
            queue,
            workers,
            stats: Arc::new(StatsInner::default()),
            series,
            slowlog,
            config,
        }
    }

    /// The corpus being served.
    pub fn corpus(&self) -> &Arc<Corpus> {
        &self.corpus
    }

    /// The backend requests compile for.
    pub fn backend(&self) -> Backend {
        self.engine.backend()
    }

    /// Submits a query with the configured default timeout.
    pub fn submit(&self, query: &str) -> Result<Ticket, ServiceError> {
        self.submit_inner(query, self.config.default_timeout, false)
    }

    /// Submits a query with an explicit deadline (`None` = none),
    /// returning a [`Ticket`] if admitted.
    pub fn submit_with_timeout(
        &self,
        query: &str,
        timeout: Option<Duration>,
    ) -> Result<Ticket, ServiceError> {
        self.submit_inner(query, timeout, false)
    }

    /// Like [`submit`](Self::submit), but the answer carries a full
    /// [`SpanTree`]: the submit thread's compile stages, each worker's
    /// per-shard subtree, and the merge pass, all on one clock. The
    /// answer's node sets are identical to an untraced submission.
    pub fn submit_traced(&self, query: &str) -> Result<Ticket, ServiceError> {
        self.submit_inner(query, self.config.default_timeout, true)
    }

    /// Traced submission with an explicit deadline (`None` = none).
    pub fn submit_traced_with_timeout(
        &self,
        query: &str,
        timeout: Option<Duration>,
    ) -> Result<Ticket, ServiceError> {
        self.submit_inner(query, timeout, true)
    }

    fn submit_inner(
        &self,
        query: &str,
        timeout: Option<Duration>,
        traced: bool,
    ) -> Result<Ticket, ServiceError> {
        obs::incr(Counter::CorpusRequests);
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let trace_id = TraceId::next();
        // capture the compile side of the pipeline as its own subtree;
        // its offsets (and the workers') are all relative to this instant
        let submitted = Instant::now();
        let collecting = traced && obs::trace::begin_at("prepare", trace_id, submitted);
        let prepared = match self.engine.prepare_in(self.corpus.catalog(), query) {
            Ok(p) => Arc::new(p),
            Err(e) => {
                if collecting {
                    obs::trace::take();
                }
                return Err(ServiceError::Engine(e));
            }
        };
        let prepare_span = if collecting {
            obs::trace::take().map(|t| t.root)
        } else {
            None
        };
        let now = Instant::now();
        let deadline = timeout.map(|t| now + t);
        let n = self.corpus.n_shards();
        // one consistent read view for the whole request: every shard
        // item evaluates against this pin, never the live corpus
        let snapshot = Arc::new(self.corpus.snapshot());
        let snapshot_seq = snapshot.seq();
        let request = Arc::new(RequestShared::new(n));
        let items: Vec<WorkItem> = (0..n)
            .map(|shard| WorkItem {
                prepared: Arc::clone(&prepared),
                snapshot: Arc::clone(&snapshot),
                shard,
                deadline,
                enqueued: now,
                request: Arc::clone(&request),
                trace: traced.then_some((trace_id, submitted)),
            })
            .collect();
        match self.queue.try_push_all(items) {
            Ok(()) => Ok(Ticket {
                request,
                query: query.to_string(),
                backend: self.engine.backend(),
                submitted,
                stats: Arc::clone(&self.stats),
                corpus: Arc::clone(&self.corpus),
                snapshot_seq,
                trace_id,
                prepare_span,
                traced,
                hist_request: Arc::clone(&self.series.request),
                slowlog: Arc::clone(&self.slowlog),
            }),
            Err((PushError::Full { queued, capacity }, _)) => {
                obs::incr(Counter::CorpusRejected);
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Overloaded { queued, capacity })
            }
            Err((PushError::Closed, _)) => Err(ServiceError::ShutDown),
        }
    }

    /// Commits one typed edit to document `id` and invalidates the
    /// result cache **precisely**: cached answers whose touched span is
    /// disjoint from the edit's affected span survive into the new
    /// version; overlapping ones are dropped. In-flight queries keep
    /// reading their pinned snapshots; their answers come back flagged
    /// [`CorpusAnswer::stale`].
    pub fn update(&self, id: DocId, edit: &Edit) -> Result<UpdateReceipt, UpdateError> {
        let receipt = self.corpus.update(id, edit)?;
        self.results
            .invalidate(u64::from(id.0), receipt.affected, receipt.version);
        obs::incr(Counter::CorpusUpdates);
        self.stats.updates.fetch_add(1, Ordering::Relaxed);
        Ok(receipt)
    }

    /// Submit + wait in one call.
    pub fn query(&self, query: &str) -> Result<CorpusAnswer, ServiceError> {
        Ok(self.submit(query)?.wait())
    }

    /// Submit + wait with an explicit deadline.
    pub fn query_with_timeout(
        &self,
        query: &str,
        timeout: Option<Duration>,
    ) -> Result<CorpusAnswer, ServiceError> {
        Ok(self.submit_with_timeout(query, timeout)?.wait())
    }

    /// Traced submit + wait in one call (see
    /// [`submit_traced`](Self::submit_traced)).
    pub fn query_traced(&self, query: &str) -> Result<CorpusAnswer, ServiceError> {
        Ok(self.submit_traced(query)?.wait())
    }

    /// Traced submit + wait with an explicit deadline.
    pub fn query_traced_with_timeout(
        &self,
        query: &str,
        timeout: Option<Duration>,
    ) -> Result<CorpusAnswer, ServiceError> {
        Ok(self.submit_traced_with_timeout(query, timeout)?.wait())
    }

    /// Point-in-time view of the end-to-end request latency
    /// distribution (submit to aggregation, nanoseconds).
    pub fn request_latency_histogram(&self) -> obs::Histogram {
        self.series.request.load()
    }

    /// Point-in-time view of the shard queue-wait distribution
    /// (admission to worker pickup, nanoseconds).
    pub fn queue_wait_histogram(&self) -> obs::Histogram {
        self.series.queue_wait.load()
    }

    /// Point-in-time view of the per-shard evaluation latency
    /// distribution (nanoseconds).
    pub fn shard_eval_histogram(&self) -> obs::Histogram {
        self.series.shard_eval.load()
    }

    /// The retained slow-query log entries, slowest first.
    pub fn slow_queries(&self) -> Vec<SlowLogEntry> {
        self.slowlog.snapshot()
    }

    /// Current service statistics.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            timeouts: self.stats.timeouts.load(Ordering::Relaxed),
            updates: self.stats.updates.load(Ordering::Relaxed),
            stale_answers: self.stats.stale_answers.load(Ordering::Relaxed),
            latency_nanos_total: self.stats.latency_nanos_total.load(Ordering::Relaxed),
            queued: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            workers: self.workers.len(),
            eval_threads: self.engine.parallelism(),
        }
    }

    /// Plan-cache statistics of the engine the service compiles through.
    pub fn cache_stats(&self) -> treewalk::CacheStats {
        self.engine.cache_stats()
    }

    /// Statistics of the shared result cache the workers answer through.
    pub fn result_cache_stats(&self) -> ResultCacheStats {
        self.results.stats()
    }

    /// Graceful shutdown: refuses new submissions, lets the workers
    /// drain every admitted work item, joins them, and returns the final
    /// statistics. Every previously-issued [`Ticket`] completes.
    pub fn shutdown(mut self) -> ServiceStats {
        self.queue.close();
        for h in self.workers.drain(..) {
            h.join().expect("worker panicked");
        }
        self.stats()
    }
}

impl Drop for QueryService {
    /// Same contract as [`QueryService::shutdown`] (drop is idempotent
    /// after an explicit shutdown).
    fn drop(&mut self) {
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl fmt::Debug for QueryService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryService")
            .field("shards", &self.corpus.n_shards())
            .field("docs", &self.corpus.n_docs())
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.queue.capacity())
            .field("backend", &self.engine.backend())
            .finish()
    }
}

/// The worker loop: pop → evaluate shard (deadline-checked per document)
/// against the item's **pinned snapshot**, answering through the shared
/// result cache → drain thread-local counters into the outcome → report.
///
/// Latency accounting per item: queue wait and shard eval go to the
/// thread-local nanosecond counters (per-request profiles) *and* the
/// service's shared histograms (the process-lifetime distributions the
/// `metrics`/`stats` ops expose). Traced items additionally collect a
/// per-shard span subtree on this thread and ship it in the outcome —
/// the span-tree analogue of the counter drain.
fn worker_loop(
    queue: &BoundedQueue<WorkItem>,
    results: &ResultCache,
    hist_queue_wait: &AtomicHistogram,
    hist_shard_eval: &AtomicHistogram,
) {
    // stray counters from a previous item must not leak into this one
    let _ = obs::drain();
    while let Some(item) = queue.pop() {
        let picked = Instant::now();
        let queue_wait = picked.duration_since(item.enqueued);
        obs::add(Counter::CorpusQueueWaitNanos, queue_wait.as_nanos() as u64);
        hist_queue_wait.record(queue_wait.as_nanos() as u64);
        let tracing = item.trace.is_some_and(|(id, origin)| {
            obs::trace::begin_at(&format!("shard{}", item.shard), id, origin)
        });
        if tracing {
            // queue wait as an explicitly-timed leaf: it ended when this
            // worker picked the item up
            let end = picked.duration_since(item.trace.expect("tracing").1);
            let wait = queue_wait.as_nanos() as u64;
            obs::trace::attach(SpanNode::leaf(
                "queue_wait",
                (end.as_nanos() as u64).saturating_sub(wait),
                wait,
            ));
        }
        let shard = item.snapshot.shard(item.shard);
        let mut per_doc = Vec::with_capacity(shard.len());
        let mut timed_out = false;
        {
            let _span = obs::span(Counter::CorpusShardEvalNanos);
            let clock = obs::Clock::start();
            for entry in shard.entries() {
                if item.deadline.is_some_and(|d| Instant::now() >= d) {
                    timed_out = true;
                    break;
                }
                let root = entry.doc.tree.root();
                let answer = item.prepared.eval_cached(
                    results,
                    u64::from(entry.id.0),
                    entry.version,
                    &entry.doc,
                    root,
                );
                per_doc.push((entry.id, entry.version, (*answer).clone()));
            }
            hist_shard_eval.record(clock.elapsed_nanos());
        }
        let timing = ShardTiming {
            shard: item.shard,
            docs: per_doc.len(),
            skipped_docs: shard.len() - per_doc.len(),
            queue_wait,
            eval: picked.elapsed(),
            timed_out,
        };
        let trace = if tracing {
            obs::trace::take().map(|t| t.root)
        } else {
            None
        };
        let outcome = ShardOutcome {
            per_doc,
            timing,
            counters: obs::drain(),
            trace,
        };
        let mut st = item.request.state.lock().expect("request poisoned");
        st.outcomes[item.shard] = Some(outcome);
        st.remaining -= 1;
        if st.remaining == 0 {
            item.request.done.notify_all();
        }
    }
}

#[cfg(test)]
mod sizing_tests {
    use super::default_eval_threads;

    #[test]
    fn splits_cores_across_concurrent_evals() {
        assert_eq!(default_eval_threads(8, 4), 2);
        assert_eq!(default_eval_threads(16, 4), 4);
        assert_eq!(default_eval_threads(12, 5), 2); // floor division
    }

    #[test]
    fn never_below_one_thread() {
        assert_eq!(default_eval_threads(1, 8), 1);
        assert_eq!(default_eval_threads(4, 64), 1);
        assert_eq!(default_eval_threads(0, 3), 1);
    }

    #[test]
    fn zero_workers_treated_as_one() {
        assert_eq!(default_eval_threads(6, 0), 6);
    }

    #[test]
    fn one_worker_gets_the_whole_machine() {
        assert_eq!(default_eval_threads(8, 1), 8);
    }
}

//! # twx-corpus — sharded corpus store + concurrent query service
//!
//! The serving layer over the `treewalk` engine: many documents, one
//! catalog, one plan per query, many threads.
//!
//! * [`Corpus`] / [`CorpusBuilder`] ([`store`]) — documents ingested into
//!   `N` shards sharing one append-only [`Catalog`](twx_xtree::Catalog),
//!   placed round-robin or size-balanced.
//! * [`QueryService`] ([`service`]) — a fixed worker pool over a bounded
//!   MPMC queue ([`queue`]): each query compiles once and fans out into
//!   one work item per shard; admission control rejects with a typed
//!   [`ServiceError::Overloaded`] when the queue is full; per-request
//!   deadlines produce partial, flagged answers; shutdown drains.
//! * [`CorpusAnswer`] — per-document answers plus per-shard latency
//!   accounting and the merged observability counters of every worker
//!   that touched the request.
//!
//! ```
//! use std::sync::Arc;
//! use twx_corpus::{Corpus, QueryService, ServiceConfig};
//! use twx_xtree::Catalog;
//! use treewalk::{Backend, Engine};
//!
//! let catalog = Arc::new(Catalog::new());
//! let mut b = Corpus::builder(Arc::clone(&catalog), 2);
//! b.add_xml("<a><b/><c><b/></c></a>").unwrap();
//! b.add_sexp("(a (b) (b))").unwrap();
//! let corpus = Arc::new(b.build());
//!
//! let service = QueryService::new(
//!     corpus,
//!     Engine::with_backend(Backend::Product),
//!     ServiceConfig { workers: 2, ..ServiceConfig::default() },
//! );
//! let answer = service.query("down*[b]").unwrap();
//! assert_eq!(answer.total_matches, 4); // two `b` descendants per document
//! service.shutdown();
//! ```
//!
//! The `twx-serve` binary in this crate exposes a service over TCP with
//! a newline-delimited JSON protocol; see the repository README.

pub mod proto;
pub mod queue;
pub mod service;
pub mod slowlog;
pub mod store;

pub use queue::{BoundedQueue, PushError};
pub use service::{
    CorpusAnswer, QueryService, ServiceConfig, ServiceError, ServiceStats, ShardTiming, Ticket,
};
pub use slowlog::{SlowLog, SlowLogEntry};
pub use store::{
    Corpus, CorpusBuilder, CorpusSnapshot, DocEntry, DocId, PersistReceipt, Placement, Shard,
    ShardState, Snapshotter, UpdateError, UpdateReceipt,
};
pub use twx_store::{RecoveryReport, StoreConfig, StoreError, StoreFault};

//! The sharded document store.
//!
//! A [`Corpus`] is an immutable collection of documents partitioned into
//! `N` shards, all sharing one append-only
//! [`Catalog`] — the label space against which
//! query plans are compiled once and served everywhere. Shards are the
//! unit of parallelism for the query service: one compiled plan × one
//! shard is one work item.
//!
//! Ingestion goes through [`CorpusBuilder`]: XML or s-expression sources
//! parse against the shared catalog ([`parse_xml_catalog`] /
//! [`parse_sexp_catalog`]), and placement is round-robin by default or
//! size-balanced (least-loaded shard by node count) on request.

use std::fmt;
use std::sync::Arc;
use twx_xtree::parse::{parse_sexp_catalog, parse_xml_catalog, ParseError};
use twx_xtree::{Catalog, Document};

/// A corpus-wide document identifier (assigned in ingestion order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u32);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc{}", self.0)
    }
}

/// How the builder assigns documents to shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Placement {
    /// Document `k` goes to shard `k mod N` (the default).
    #[default]
    RoundRobin,
    /// Each document goes to the shard with the fewest total nodes —
    /// evens out skewed document sizes at ingestion time.
    SizeBalanced,
}

/// A document plus its corpus-wide id.
#[derive(Debug)]
pub struct DocEntry {
    /// The corpus-wide id.
    pub id: DocId,
    /// The document (immutable; carries a catalog snapshot).
    pub doc: Document,
}

/// One shard: a slice of the corpus evaluated as a unit.
#[derive(Debug, Default)]
pub struct Shard {
    entries: Vec<DocEntry>,
    nodes: usize,
}

impl Shard {
    /// The documents of this shard, in ingestion order.
    pub fn entries(&self) -> &[DocEntry] {
        &self.entries
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the shard holds no documents.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total tree nodes across the shard's documents.
    pub fn node_count(&self) -> usize {
        self.nodes
    }
}

/// An immutable, sharded, catalog-shared document collection (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct Corpus {
    catalog: Arc<Catalog>,
    shards: Vec<Shard>,
    // DocId → (shard, index-within-shard)
    index: Vec<(u32, u32)>,
}

impl Corpus {
    /// Starts building a corpus with `n_shards` shards over a shared
    /// catalog.
    pub fn builder(catalog: Arc<Catalog>, n_shards: usize) -> CorpusBuilder {
        CorpusBuilder {
            catalog,
            placement: Placement::default(),
            shards: (0..n_shards.max(1)).map(|_| Shard::default()).collect(),
            index: Vec::new(),
            round_robin_next: 0,
        }
    }

    /// The shared label space.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of documents.
    pub fn n_docs(&self) -> usize {
        self.index.len()
    }

    /// Total tree nodes across every shard.
    pub fn total_nodes(&self) -> usize {
        self.shards.iter().map(Shard::node_count).sum()
    }

    /// A shard by index.
    ///
    /// # Panics
    /// If `i >= n_shards()`.
    pub fn shard(&self, i: usize) -> &Shard {
        &self.shards[i]
    }

    /// Looks up a document by id.
    pub fn doc(&self, id: DocId) -> Option<&Document> {
        let &(s, i) = self.index.get(id.0 as usize)?;
        Some(&self.shards[s as usize].entries[i as usize].doc)
    }

    /// Iterates every document entry, shard by shard.
    pub fn iter(&self) -> impl Iterator<Item = &DocEntry> + '_ {
        self.shards.iter().flat_map(|s| s.entries.iter())
    }
}

/// Builds a [`Corpus`] (see [`Corpus::builder`]).
pub struct CorpusBuilder {
    catalog: Arc<Catalog>,
    placement: Placement,
    shards: Vec<Shard>,
    index: Vec<(u32, u32)>,
    round_robin_next: usize,
}

impl CorpusBuilder {
    /// Selects the placement policy.
    pub fn placement(mut self, p: Placement) -> CorpusBuilder {
        self.placement = p;
        self
    }

    /// Parses and ingests an XML document (labels intern into the shared
    /// catalog).
    pub fn add_xml(&mut self, xml: &str) -> Result<DocId, ParseError> {
        Ok(self.add_document(parse_xml_catalog(xml, &self.catalog)?))
    }

    /// Parses and ingests an s-expression document.
    pub fn add_sexp(&mut self, sexp: &str) -> Result<DocId, ParseError> {
        Ok(self.add_document(parse_sexp_catalog(sexp, &self.catalog)?))
    }

    /// Ingests an already-parsed document. The document must have been
    /// built against this builder's catalog (e.g. via
    /// `parse_*_catalog` or `random_document_in`) so that its label ids
    /// agree with plans compiled against the catalog.
    pub fn add_document(&mut self, doc: Document) -> DocId {
        let id = DocId(self.index.len() as u32);
        let shard = match self.placement {
            Placement::RoundRobin => {
                let s = self.round_robin_next;
                self.round_robin_next = (s + 1) % self.shards.len();
                s
            }
            Placement::SizeBalanced => {
                let (s, _) = self
                    .shards
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, sh)| sh.nodes)
                    .expect("at least one shard");
                s
            }
        };
        let sh = &mut self.shards[shard];
        self.index.push((shard as u32, sh.entries.len() as u32));
        sh.nodes += doc.tree.len();
        sh.entries.push(DocEntry { id, doc });
        id
    }

    /// Finishes the build; the corpus is immutable from here on.
    pub fn build(self) -> Corpus {
        Corpus {
            catalog: self.catalog,
            shards: self.shards,
            index: self.index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::generate::random_document_in;
    use twx_xtree::generate::Shape;
    use twx_xtree::rng::SplitMix64;

    fn catalog() -> Arc<Catalog> {
        Arc::new(Catalog::from_names(["a", "b", "c"]))
    }

    #[test]
    fn round_robin_placement_cycles() {
        let mut b = Corpus::builder(catalog(), 3);
        for _ in 0..7 {
            b.add_xml("<a><b/></a>").unwrap();
        }
        let c = b.build();
        assert_eq!(c.n_docs(), 7);
        let sizes: Vec<usize> = (0..3).map(|i| c.shard(i).len()).collect();
        assert_eq!(sizes, vec![3, 2, 2]);
        // ids and the index agree
        for e in c.iter() {
            assert_eq!(c.doc(e.id).unwrap().tree.len(), e.doc.tree.len());
        }
        assert!(c.doc(DocId(7)).is_none());
    }

    #[test]
    fn size_balanced_placement_fills_the_lightest_shard() {
        let cat = catalog();
        let mut rng = SplitMix64::seed_from_u64(5);
        let mut b = Corpus::builder(Arc::clone(&cat), 2).placement(Placement::SizeBalanced);
        // one big document, then several small ones: the small ones should
        // all land on the other shard until the node counts even out
        b.add_document(random_document_in(Shape::Wide, 120, &cat, &mut rng));
        for _ in 0..6 {
            b.add_document(random_document_in(Shape::Wide, 10, &cat, &mut rng));
        }
        let c = b.build();
        let (a, b_) = (c.shard(0).node_count(), c.shard(1).node_count());
        assert_eq!(a + b_, c.total_nodes());
        assert_eq!(c.shard(0).len(), 1, "big doc alone on shard 0");
        assert_eq!(c.shard(1).len(), 6);
    }

    #[test]
    fn documents_share_the_catalog_label_space() {
        let cat = catalog();
        let mut b = Corpus::builder(Arc::clone(&cat), 2);
        b.add_xml("<a><b/><d/></a>").unwrap(); // interns d
        b.add_sexp("(a (d))").unwrap();
        let c = b.build();
        assert_eq!(c.n_docs(), 2);
        assert!(cat.lookup("d").is_some());
        let l = cat.lookup("d").unwrap();
        for e in c.iter() {
            // both documents resolve `d` to the same label id
            assert_eq!(e.doc.alphabet.lookup("d"), Some(l));
        }
    }
}

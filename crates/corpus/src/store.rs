//! The sharded, **versioned** document store.
//!
//! A [`Corpus`] is a collection of documents partitioned into `N` shards,
//! all sharing one append-only
//! [`Catalog`] — the label space against which
//! query plans are compiled once and served everywhere. Shards are the
//! unit of parallelism for the query service: one compiled plan × one
//! shard is one work item.
//!
//! Since PR 5 the corpus is **live**: documents mutate through
//! [`Corpus::update`] with the typed edits of [`twx_xtree::edit`]. The
//! concurrency story is MVCC-by-snapshot:
//!
//! * Each shard's contents live behind an `RwLock<Arc<ShardState>>`.
//!   A writer clones the entry vector (cheap — documents are
//!   `Arc<Document>`), applies the edit to one entry, and swaps in a new
//!   `Arc<ShardState>` under the write lock. **No document is ever
//!   mutated in place**, so a reader can never observe a half-applied
//!   edit.
//! * Readers call [`Corpus::snapshot`] to pin every shard's current
//!   `Arc<ShardState>` plus the global commit sequence number. The
//!   snapshot stays exactly as it was pinned no matter how many commits
//!   land afterwards.
//! * Every commit bumps a global sequence counter ([`Corpus::seq`]);
//!   comparing a pinned snapshot's sequence against the live counter is
//!   how the query service detects (and flags) stale answers.
//!
//! Ingestion still goes through [`CorpusBuilder`]: XML or s-expression
//! sources parse against the shared catalog, and placement is
//! round-robin by default or size-balanced on request. Ingested
//! documents start at [`DocVersion`] 0.

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;
use twx_store::journal::JournalRecord;
use twx_store::{RecoveryReport, Store, StoreConfig, StoreError};
use twx_xtree::edit::{apply_edit, DocVersion, Edit, EditError, Span};
use twx_xtree::parse::{parse_sexp_catalog, parse_xml_catalog, ParseError};
use twx_xtree::{Catalog, Document};

/// A corpus-wide document identifier (assigned in ingestion order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u32);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc{}", self.0)
    }
}

/// How the builder assigns documents to shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Placement {
    /// Document `k` goes to shard `k mod N` (the default).
    #[default]
    RoundRobin,
    /// Each document goes to the shard with the fewest total nodes —
    /// evens out skewed document sizes at ingestion time.
    SizeBalanced,
}

/// A document plus its corpus-wide id and current version.
#[derive(Clone, Debug)]
pub struct DocEntry {
    /// The corpus-wide id.
    pub id: DocId,
    /// The entry's version: 0 at ingest, +1 per applied edit.
    pub version: DocVersion,
    /// The document snapshot (shared, never mutated in place).
    pub doc: Arc<Document>,
}

/// One shard's pinned contents: the unit readers snapshot and workers
/// evaluate.
#[derive(Debug, Default)]
pub struct ShardState {
    entries: Vec<DocEntry>,
    nodes: usize,
}

impl ShardState {
    /// The documents of this shard, in ingestion order.
    pub fn entries(&self) -> &[DocEntry] {
        &self.entries
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the shard holds no documents.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total tree nodes across the shard's documents.
    pub fn node_count(&self) -> usize {
        self.nodes
    }
}

/// One shard: a versioned slot holding the current [`ShardState`].
#[derive(Debug, Default)]
pub struct Shard {
    state: RwLock<Arc<ShardState>>,
}

impl Shard {
    /// Pins the shard's current contents. The returned state never
    /// changes; later commits swap in a fresh one.
    pub fn snapshot(&self) -> Arc<ShardState> {
        Arc::clone(&self.state.read().expect("shard poisoned"))
    }

    /// Number of documents (of the current state).
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether the shard holds no documents.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// Total tree nodes (of the current state).
    pub fn node_count(&self) -> usize {
        self.snapshot().node_count()
    }
}

/// A consistent read view of the whole corpus: every shard's state plus
/// the commit sequence number at pin time. In-flight queries evaluate
/// against one of these and are immune to concurrent commits.
#[derive(Clone, Debug)]
pub struct CorpusSnapshot {
    shards: Vec<Arc<ShardState>>,
    index: Arc<Vec<(u32, u32)>>,
    seq: u64,
}

impl CorpusSnapshot {
    /// The pinned state of shard `i`.
    pub fn shard(&self, i: usize) -> &ShardState {
        &self.shards[i]
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The commit sequence number this snapshot was pinned at.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Looks up a document entry by id within this snapshot.
    pub fn entry(&self, id: DocId) -> Option<&DocEntry> {
        let &(s, i) = self.index.get(id.0 as usize)?;
        self.shards[s as usize].entries.get(i as usize)
    }
}

/// Why a [`Corpus::update`] failed. Nothing changes on error (a
/// [`UpdateError::Store`] failure burns a sequence number but commits
/// nothing, in memory or on disk).
#[derive(Clone, Debug)]
pub enum UpdateError {
    /// No document has this id.
    UnknownDoc(DocId),
    /// The edit itself was invalid for the document's current tree.
    Edit(EditError),
    /// The durable store refused the journal append; the edit was NOT
    /// committed (write-ahead rule: no ack without a journal record).
    Store(Arc<StoreError>),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnknownDoc(id) => write!(f, "unknown document {id}"),
            UpdateError::Edit(e) => write!(f, "{e}"),
            UpdateError::Store(e) => write!(f, "journal append failed: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<EditError> for UpdateError {
    fn from(e: EditError) -> UpdateError {
        UpdateError::Edit(e)
    }
}

/// What a successful [`Corpus::update`] reports: everything a cache
/// invalidation or a test oracle needs to know about the commit.
#[derive(Clone, Debug)]
pub struct UpdateReceipt {
    /// The edited document.
    pub id: DocId,
    /// The version the edit produced.
    pub version: DocVersion,
    /// Affected preorder span, in the pre-edit numbering.
    pub affected: Span,
    /// Node count after the edit.
    pub new_len: usize,
    /// The global commit sequence number of this commit (1-based).
    pub seq: u64,
    /// The post-edit document, for oracles that want to pin it.
    pub doc: Arc<Document>,
}

/// A sharded, catalog-shared, **versioned** document collection (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct Corpus {
    catalog: Arc<Catalog>,
    shards: Vec<Shard>,
    // DocId → (shard, index-within-shard); never changes after build
    index: Arc<Vec<(u32, u32)>>,
    // commits applied so far; bumped after each successful swap
    seq: AtomicU64,
    // the durable store, when this corpus persists (see `twx-store`)
    store: Option<Arc<Store>>,
}

impl Corpus {
    /// Starts building a corpus with `n_shards` shards over a shared
    /// catalog.
    pub fn builder(catalog: Arc<Catalog>, n_shards: usize) -> CorpusBuilder {
        CorpusBuilder {
            catalog,
            placement: Placement::default(),
            shards: (0..n_shards.max(1))
                .map(|_| ShardState::default())
                .collect(),
            index: Vec::new(),
            round_robin_next: 0,
            store_dir: None,
            store_cfg: StoreConfig::default(),
        }
    }

    /// Recovers a corpus from a durable store directory: newest valid
    /// snapshot per shard, torn journal tail truncated, journal replayed
    /// — documents, versions, shard placement, and the commit sequence
    /// come back exactly as persisted. The returned corpus keeps
    /// journalling to the same store.
    pub fn recover(
        dir: impl Into<PathBuf>,
        cfg: StoreConfig,
    ) -> Result<(Corpus, RecoveryReport), StoreError> {
        let store = Store::open(dir, cfg)?;
        let recovered = store.recover()?;
        let n_docs: usize = recovered.shards.iter().map(Vec::len).sum();
        let mut index = vec![None; n_docs];
        for (si, docs) in recovered.shards.iter().enumerate() {
            for (di, d) in docs.iter().enumerate() {
                let slot = index
                    .get_mut(d.doc_id as usize)
                    .ok_or_else(|| StoreError::Corrupt {
                        what: "recovered placement",
                        detail: format!("doc id {} outside 0..{n_docs}", d.doc_id),
                    })?;
                if slot.replace((si as u32, di as u32)).is_some() {
                    return Err(StoreError::Corrupt {
                        what: "recovered placement",
                        detail: format!("doc id {} appears in two shards", d.doc_id),
                    });
                }
            }
        }
        let index: Vec<(u32, u32)> = index
            .into_iter()
            .map(|s| {
                s.ok_or(StoreError::Corrupt {
                    what: "recovered placement",
                    detail: "non-contiguous document ids".to_string(),
                })
            })
            .collect::<Result<_, _>>()?;
        let shards = recovered
            .shards
            .into_iter()
            .map(|docs| {
                let nodes = docs.iter().map(|d| d.doc.tree.len()).sum();
                let entries = docs
                    .into_iter()
                    .map(|d| DocEntry {
                        id: DocId(d.doc_id),
                        version: DocVersion(d.version),
                        doc: Arc::new(d.doc),
                    })
                    .collect();
                Shard {
                    state: RwLock::new(Arc::new(ShardState { entries, nodes })),
                }
            })
            .collect();
        Ok((
            Corpus {
                catalog: recovered.catalog,
                shards,
                index: Arc::new(index),
                seq: AtomicU64::new(recovered.seq),
                store: Some(Arc::new(store)),
            },
            recovered.report,
        ))
    }

    /// The attached durable store, if this corpus persists.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Where document `id` lives: `(shard, index-within-shard)`. The
    /// placement is fixed at build time, persisted in snapshots, and
    /// reproduced exactly by [`Corpus::recover`].
    pub fn placement(&self, id: DocId) -> Option<(u32, u32)> {
        self.index.get(id.0 as usize).copied()
    }

    /// The shared label space.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of documents.
    pub fn n_docs(&self) -> usize {
        self.index.len()
    }

    /// Total tree nodes across every shard (of the current states).
    pub fn total_nodes(&self) -> usize {
        self.shards.iter().map(Shard::node_count).sum()
    }

    /// A shard by index.
    ///
    /// # Panics
    /// If `i >= n_shards()`.
    pub fn shard(&self, i: usize) -> &Shard {
        &self.shards[i]
    }

    /// Commits applied to this corpus so far. Compare against a pinned
    /// [`CorpusSnapshot::seq`] to detect staleness.
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Pins a consistent snapshot of every shard plus the commit
    /// sequence number.
    ///
    /// Shards are pinned one by one, so a commit racing this call may
    /// land between two shards — each *shard* is still internally
    /// consistent (the swap is atomic under the write lock), and the
    /// per-document versions in the snapshot say exactly what was
    /// pinned. The sequence number is read **before** the shards: if it
    /// equals the live [`Corpus::seq`] afterwards, no commit raced at
    /// all.
    pub fn snapshot(&self) -> CorpusSnapshot {
        let seq = self.seq();
        CorpusSnapshot {
            shards: self.shards.iter().map(Shard::snapshot).collect(),
            index: Arc::clone(&self.index),
            seq,
        }
    }

    /// Looks up a document by id (its current version).
    pub fn doc(&self, id: DocId) -> Option<Arc<Document>> {
        self.entry(id).map(|e| e.doc)
    }

    /// Looks up a document entry (id, version, document) by id.
    pub fn entry(&self, id: DocId) -> Option<DocEntry> {
        let &(s, i) = self.index.get(id.0 as usize)?;
        self.shards[s as usize]
            .snapshot()
            .entries
            .get(i as usize)
            .cloned()
    }

    /// Applies one typed edit to document `id`, committing a fresh
    /// `Arc<Document>` into the owning shard and bumping the global
    /// commit sequence. Readers holding a pinned snapshot keep reading
    /// the old version; on error nothing changes anywhere.
    pub fn update(&self, id: DocId, edit: &Edit) -> Result<UpdateReceipt, UpdateError> {
        let &(s, i) = self
            .index
            .get(id.0 as usize)
            .ok_or(UpdateError::UnknownDoc(id))?;
        let shard = &self.shards[s as usize];
        let mut slot = shard.state.write().expect("shard poisoned");
        let old = &slot.entries[i as usize];
        let (tree, affected) = apply_edit(&old.doc.tree, edit)?;
        let new_len = tree.len();
        // an edit may carry a label interned after this document's
        // alphabet snapshot was taken; refresh the snapshot so the new
        // document always covers its own labels (snapshot encoding and
        // sexp rendering rely on that)
        let alphabet = match edit {
            Edit::Relabel { label, .. } | Edit::InsertChild { label, .. }
                if label.index() >= old.doc.alphabet.len() =>
            {
                self.catalog.snapshot()
            }
            _ => old.doc.alphabet.clone(),
        };
        let doc = Arc::new(Document::new(tree, alphabet));
        let version = old.version.bump();
        // the commit counter is claimed (and, with a store attached, the
        // journal record appended) while still holding the write lock so
        // per-shard commit order and sequence order agree
        let seq = self.seq.fetch_add(1, Ordering::AcqRel) + 1;
        // write-ahead: the record must be journalled before the in-memory
        // swap makes the edit visible — on append failure nothing commits
        // (the claimed sequence number is burned, which recovery tolerates)
        if let Some(store) = &self.store {
            let rec = JournalRecord::from_edit(seq, id.0, version.0, edit, &self.catalog);
            store
                .append(&rec)
                .map_err(|e| UpdateError::Store(Arc::new(e)))?;
        }
        // copy-on-write: entry vec clone is Arc-shallow
        let mut entries = slot.entries.clone();
        let nodes = slot.nodes - old.doc.tree.len() + new_len;
        entries[i as usize] = DocEntry {
            id,
            version,
            doc: Arc::clone(&doc),
        };
        *slot = Arc::new(ShardState { entries, nodes });
        drop(slot);
        Ok(UpdateReceipt {
            id,
            version,
            affected,
            new_len,
            seq,
            doc,
        })
    }

    /// Iterates every document entry (current versions), shard by shard.
    pub fn iter(&self) -> impl Iterator<Item = DocEntry> + '_ {
        self.shards
            .iter()
            .flat_map(|s| s.snapshot().entries.clone())
    }

    /// Writes a full snapshot generation of every shard at a pinned
    /// commit sequence, then compacts the journal: records covered by
    /// the new snapshots are dropped and older snapshot generations
    /// removed. Returns `None` when no store is attached.
    ///
    /// Safe against concurrent commits: the pinned
    /// [`CorpusSnapshot`] contains every commit with `seq <=`
    /// [`CorpusSnapshot::seq`] (and possibly later ones, whose journal
    /// records survive compaction and are skipped as already-contained
    /// on replay).
    pub fn persist(&self) -> Result<Option<PersistReceipt>, StoreError> {
        let Some(store) = &self.store else {
            return Ok(None);
        };
        let pinned = self.snapshot();
        store.write_catalog(&self.catalog)?;
        let mut snapshot_bytes = 0;
        for (si, state) in pinned.shards.iter().enumerate() {
            let docs: Vec<(u32, u64, &Document)> = state
                .entries
                .iter()
                .map(|e| (e.id.0, e.version.0, &*e.doc))
                .collect();
            snapshot_bytes += store.write_snapshot(si as u32, pinned.seq(), &docs)?;
        }
        let journal_reclaimed = store.compact(pinned.seq())?;
        Ok(Some(PersistReceipt {
            seq: pinned.seq(),
            snapshot_bytes,
            journal_reclaimed,
        }))
    }

    /// Spawns the background snapshotter: every `poll` it checks the
    /// journal length and runs [`Corpus::persist`] once it exceeds
    /// `journal_threshold_bytes` (compacting the journal after the
    /// successful write). Returns a handle that stops the thread on
    /// drop. No-op thread when the corpus has no store.
    pub fn spawn_snapshotter(
        self: &Arc<Corpus>,
        journal_threshold_bytes: u64,
        poll: Duration,
    ) -> Snapshotter {
        let corpus = Arc::clone(self);
        let signal = Arc::new((Mutex::new(false), Condvar::new()));
        let stats = Arc::new(SnapshotterStats::default());
        let thread_signal = Arc::clone(&signal);
        let thread_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("twx-snapshotter".to_string())
            .spawn(move || {
                let (lock, cvar) = &*thread_signal;
                let mut stopped = lock.lock().expect("snapshotter signal poisoned");
                loop {
                    let (guard, _timeout) = cvar
                        .wait_timeout(stopped, poll)
                        .expect("snapshotter signal poisoned");
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    let due = corpus
                        .store()
                        .map(|s| s.journal_bytes() >= journal_threshold_bytes)
                        .unwrap_or(false);
                    if due {
                        match corpus.persist() {
                            Ok(_) => {
                                thread_stats.persists.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                thread_stats.errors.fetch_add(1, Ordering::Relaxed);
                                *thread_stats
                                    .last_error
                                    .lock()
                                    .expect("snapshotter error slot poisoned") =
                                    Some(e.to_string());
                            }
                        }
                    }
                }
            })
            .expect("spawn snapshotter thread");
        Snapshotter {
            signal,
            stats,
            handle: Some(handle),
        }
    }
}

/// What [`Corpus::persist`] did.
#[derive(Clone, Copy, Debug)]
pub struct PersistReceipt {
    /// The commit sequence the snapshots were taken at.
    pub seq: u64,
    /// Total bytes across the written shard snapshots.
    pub snapshot_bytes: u64,
    /// Journal bytes reclaimed by compaction.
    pub journal_reclaimed: u64,
}

#[derive(Debug, Default)]
struct SnapshotterStats {
    persists: AtomicU64,
    errors: AtomicU64,
    last_error: Mutex<Option<String>>,
}

/// Handle on the background snapshotter thread (see
/// [`Corpus::spawn_snapshotter`]). Dropping it stops the thread.
#[derive(Debug)]
pub struct Snapshotter {
    signal: Arc<(Mutex<bool>, Condvar)>,
    stats: Arc<SnapshotterStats>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Snapshotter {
    /// Successful background persists so far.
    pub fn persists(&self) -> u64 {
        self.stats.persists.load(Ordering::Relaxed)
    }

    /// Failed background persists so far.
    pub fn errors(&self) -> u64 {
        self.stats.errors.load(Ordering::Relaxed)
    }

    /// The most recent persist error, if any.
    pub fn last_error(&self) -> Option<String> {
        self.stats
            .last_error
            .lock()
            .expect("snapshotter error slot poisoned")
            .clone()
    }
}

impl Drop for Snapshotter {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.signal;
        *lock.lock().expect("snapshotter signal poisoned") = true;
        cvar.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Builds a [`Corpus`] (see [`Corpus::builder`]).
pub struct CorpusBuilder {
    catalog: Arc<Catalog>,
    placement: Placement,
    shards: Vec<ShardState>,
    index: Vec<(u32, u32)>,
    round_robin_next: usize,
    store_dir: Option<PathBuf>,
    store_cfg: StoreConfig,
}

impl CorpusBuilder {
    /// Selects the placement policy.
    pub fn placement(mut self, p: Placement) -> CorpusBuilder {
        self.placement = p;
        self
    }

    /// Attaches a durable store: [`CorpusBuilder::try_build`] creates a
    /// fresh store in `dir` (which must not already hold one — recover
    /// an existing store with [`Corpus::recover`] instead), persists the
    /// catalog plus an initial snapshot generation of every shard, and
    /// the built corpus journals every [`Corpus::update`].
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> CorpusBuilder {
        self.store_dir = Some(dir.into());
        self
    }

    /// Store tuning (group-commit interval, fault injection); only
    /// meaningful together with [`CorpusBuilder::with_store`].
    pub fn store_config(mut self, cfg: StoreConfig) -> CorpusBuilder {
        self.store_cfg = cfg;
        self
    }

    /// Parses and ingests an XML document (labels intern into the shared
    /// catalog).
    pub fn add_xml(&mut self, xml: &str) -> Result<DocId, ParseError> {
        Ok(self.add_document(parse_xml_catalog(xml, &self.catalog)?))
    }

    /// Parses and ingests an s-expression document.
    pub fn add_sexp(&mut self, sexp: &str) -> Result<DocId, ParseError> {
        Ok(self.add_document(parse_sexp_catalog(sexp, &self.catalog)?))
    }

    /// Ingests an already-parsed document. The document must have been
    /// built against this builder's catalog (e.g. via
    /// `parse_*_catalog` or `random_document_in`) so that its label ids
    /// agree with plans compiled against the catalog.
    pub fn add_document(&mut self, doc: Document) -> DocId {
        let id = DocId(self.index.len() as u32);
        let shard = match self.placement {
            Placement::RoundRobin => {
                let s = self.round_robin_next;
                self.round_robin_next = (s + 1) % self.shards.len();
                s
            }
            Placement::SizeBalanced => {
                let (s, _) = self
                    .shards
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, sh)| sh.nodes)
                    .expect("at least one shard");
                s
            }
        };
        let sh = &mut self.shards[shard];
        self.index.push((shard as u32, sh.entries.len() as u32));
        sh.nodes += doc.tree.len();
        sh.entries.push(DocEntry {
            id,
            version: DocVersion(0),
            doc: Arc::new(doc),
        });
        id
    }

    /// Finishes the build. Documents keep mutating through
    /// [`Corpus::update`]; the *set* of documents (and their shard
    /// placement) is fixed from here on.
    ///
    /// # Panics
    /// If a store was attached with [`CorpusBuilder::with_store`] and
    /// persisting the initial state fails — use
    /// [`CorpusBuilder::try_build`] for a typed error instead. Without
    /// a store this never panics.
    pub fn build(self) -> Corpus {
        self.try_build().expect("initial store persist failed")
    }

    /// Like [`CorpusBuilder::build`], with store creation failures as
    /// typed errors. With a store attached, the store directory is
    /// created, the catalog written, and every shard snapshotted at
    /// sequence 0 before the corpus is returned — so a crash at any
    /// later point recovers at least the ingested state.
    pub fn try_build(self) -> Result<Corpus, StoreError> {
        let store = match self.store_dir {
            Some(dir) => Some(Arc::new(Store::create(
                dir,
                self.shards.len() as u32,
                self.store_cfg,
            )?)),
            None => None,
        };
        let corpus = Corpus {
            catalog: self.catalog,
            shards: self
                .shards
                .into_iter()
                .map(|state| Shard {
                    state: RwLock::new(Arc::new(state)),
                })
                .collect(),
            index: Arc::new(self.index),
            seq: AtomicU64::new(0),
            store,
        };
        corpus.persist()?;
        Ok(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::generate::random_document_in;
    use twx_xtree::generate::Shape;
    use twx_xtree::rng::SplitMix64;
    use twx_xtree::serialize::to_sexp;
    use twx_xtree::NodeId;

    fn catalog() -> Arc<Catalog> {
        Arc::new(Catalog::from_names(["a", "b", "c"]))
    }

    #[test]
    fn round_robin_placement_cycles() {
        let mut b = Corpus::builder(catalog(), 3);
        for _ in 0..7 {
            b.add_xml("<a><b/></a>").unwrap();
        }
        let c = b.build();
        assert_eq!(c.n_docs(), 7);
        let sizes: Vec<usize> = (0..3).map(|i| c.shard(i).len()).collect();
        assert_eq!(sizes, vec![3, 2, 2]);
        // ids and the index agree
        for e in c.iter() {
            assert_eq!(c.doc(e.id).unwrap().tree.len(), e.doc.tree.len());
            assert_eq!(e.version, DocVersion(0));
        }
        assert!(c.doc(DocId(7)).is_none());
    }

    #[test]
    fn size_balanced_placement_fills_the_lightest_shard() {
        let cat = catalog();
        let mut rng = SplitMix64::seed_from_u64(5);
        let mut b = Corpus::builder(Arc::clone(&cat), 2).placement(Placement::SizeBalanced);
        // one big document, then several small ones: the small ones should
        // all land on the other shard until the node counts even out
        b.add_document(random_document_in(Shape::Wide, 120, &cat, &mut rng));
        for _ in 0..6 {
            b.add_document(random_document_in(Shape::Wide, 10, &cat, &mut rng));
        }
        let c = b.build();
        let (a, b_) = (c.shard(0).node_count(), c.shard(1).node_count());
        assert_eq!(a + b_, c.total_nodes());
        assert_eq!(c.shard(0).len(), 1, "big doc alone on shard 0");
        assert_eq!(c.shard(1).len(), 6);
    }

    #[test]
    fn documents_share_the_catalog_label_space() {
        let cat = catalog();
        let mut b = Corpus::builder(Arc::clone(&cat), 2);
        b.add_xml("<a><b/><d/></a>").unwrap(); // interns d
        b.add_sexp("(a (d))").unwrap();
        let c = b.build();
        assert_eq!(c.n_docs(), 2);
        assert!(cat.lookup("d").is_some());
        let l = cat.lookup("d").unwrap();
        for e in c.iter() {
            // both documents resolve `d` to the same label id
            assert_eq!(e.doc.alphabet.lookup("d"), Some(l));
        }
    }

    #[test]
    fn update_commits_new_version_and_preserves_pinned_snapshots() {
        let cat = catalog();
        let mut b = Corpus::builder(Arc::clone(&cat), 2);
        let id0 = b.add_sexp("(a (b) (c))").unwrap();
        let id1 = b.add_sexp("(a b)").unwrap();
        let c = b.build();
        assert_eq!(c.seq(), 0);
        let pinned = c.snapshot();

        let label_c = cat.lookup("c").unwrap();
        let r = c
            .update(
                id0,
                &Edit::Relabel {
                    node: NodeId(1),
                    label: label_c,
                },
            )
            .unwrap();
        assert_eq!(r.version, DocVersion(1));
        assert_eq!(r.seq, 1);
        assert_eq!(c.seq(), 1);
        assert_eq!(r.affected, Span { start: 1, end: 2 });

        // live view sees the edit; the pinned snapshot does not
        let alphabet = c.doc(id0).unwrap().alphabet.clone();
        assert_eq!(to_sexp(&c.doc(id0).unwrap().tree, &alphabet), "(a c c)");
        let old = pinned.entry(id0).unwrap();
        assert_eq!(old.version, DocVersion(0));
        assert_eq!(to_sexp(&old.doc.tree, &alphabet), "(a b c)");
        assert_eq!(pinned.seq(), 0);

        // other documents are untouched, node accounting follows edits
        assert_eq!(c.entry(id1).unwrap().version, DocVersion(0));
        let before_nodes = c.total_nodes();
        c.update(id0, &Edit::RemoveSubtree { node: NodeId(2) })
            .unwrap();
        assert_eq!(c.total_nodes(), before_nodes - 1);
        assert_eq!(c.entry(id0).unwrap().version, DocVersion(2));
        assert_eq!(c.seq(), 2);
    }

    #[test]
    fn update_errors_are_typed_and_change_nothing() {
        let cat = catalog();
        let mut b = Corpus::builder(Arc::clone(&cat), 1);
        let id = b.add_sexp("(a b)").unwrap();
        let c = b.build();
        let label = cat.lookup("a").unwrap();
        assert!(matches!(
            c.update(
                DocId(9),
                &Edit::Relabel {
                    node: NodeId(0),
                    label
                }
            ),
            Err(UpdateError::UnknownDoc(DocId(9)))
        ));
        assert!(matches!(
            c.update(id, &Edit::RemoveSubtree { node: NodeId(0) }),
            Err(UpdateError::Edit(EditError::CannotRemoveRoot))
        ));
        assert_eq!(c.seq(), 0);
        assert_eq!(c.entry(id).unwrap().version, DocVersion(0));
    }
}

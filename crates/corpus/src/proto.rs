//! The serve-tier protocol: JSON request routing over any transport.
//!
//! This module is the application half of `twx-serve`, factored out of
//! the binary so tests and benches can run in-process servers: a
//! [`ProtoHandler`] implements [`twx_netio::Handler`] and turns one
//! request payload (one NDJSON line or one binary frame, the transport
//! does not matter here) into one reply payload.
//!
//! Ops: `query` (with optional `trace`/`timeout_ms`), `update`,
//! `stats`, `metrics`, `slowlog`, `snapshot`, `shutdown`. Errors come
//! back typed — `{"ok":false,"error":K,...}` with `K` one of
//! `overloaded` | `shutdown` | `engine` | `protocol` — and never cost
//! the connection.
//!
//! Queries are validated **read-only** against the corpus alphabet
//! before submission: `prepare_in` would intern unknown labels into the
//! shared catalog, and a network client must not be able to grow the
//! server's label space — it gets a typed `engine` error instead.

use crate::service::{CorpusAnswer, QueryService, ServiceError, ServiceStats};
use crate::store::{Corpus, DocId};
use std::sync::Arc;
use std::time::{Duration, Instant};
use twx_netio::{NetStats, Reply};
use twx_obs::json::{parse as parse_json, Json};
use twx_obs::metrics::Gauge;
use twx_regxpath::parser::parse_rpath_resolved;
use twx_xtree::edit::Edit;
use twx_xtree::{Alphabet, NodeId};

/// Requests longer than this are refused with a typed `protocol` error
/// (the connection stays open). Applied to NDJSON lines and binary
/// frame payloads alike; far above any legitimate query, far below
/// anything that could pressure memory.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

// -- tiny accessors over the hand-rolled Json enum --

fn get<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    match obj {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Option<&'a str> {
    match get(obj, key)? {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn get_u64(obj: &Json, key: &str) -> Option<u64> {
    match get(obj, key)? {
        Json::Int(n) => Some(*n),
        Json::Num(x) if *x >= 0.0 => Some(*x as u64),
        _ => None,
    }
}

fn get_bool(obj: &Json, key: &str) -> bool {
    matches!(get(obj, key), Some(Json::Bool(true)))
}

fn err_line(kind: &str, detail: &str) -> String {
    Json::obj()
        .field("ok", false)
        .field("error", kind)
        .field("detail", detail)
        .render()
}

fn answer_line(a: &CorpusAnswer) -> String {
    let docs: Vec<Json> = a
        .per_doc
        .iter()
        .map(|(id, version, set)| {
            Json::obj()
                .field("doc", id.0)
                .field("version", version.0)
                .field("matches", set.count())
        })
        .collect();
    let shards: Vec<Json> = a
        .shards
        .iter()
        .map(|t| {
            Json::obj()
                .field("shard", t.shard)
                .field("docs", t.docs)
                .field("skipped_docs", t.skipped_docs)
                .field("queue_wait_us", t.queue_wait.as_micros() as u64)
                .field("eval_us", t.eval.as_micros() as u64)
                .field("timed_out", t.timed_out)
        })
        .collect();
    let mut reply = Json::obj()
        .field("ok", true)
        .field("matches", a.total_matches)
        .field("docs", docs)
        .field("timed_out", a.timed_out)
        .field("latency_us", a.latency.as_micros() as u64)
        .field("trace_id", a.trace_id.to_hex())
        .field("shards", shards);
    if let Some(tree) = &a.trace {
        reply = reply.field("trace", tree.to_json());
    }
    reply.render()
}

/// Parses the `edit` object of an `update` request into a typed
/// [`Edit`], resolving the label **read-only** against the corpus
/// alphabet (unknown labels are an error, never an intern).
fn parse_edit(req: &Json, alphabet: &Alphabet) -> Result<Edit, String> {
    let edit = get(req, "edit").ok_or("update op needs an `edit` object")?;
    let kind = get_str(edit, "op").ok_or("edit needs an `op` string")?;
    let label = |e: &Json| -> Result<_, String> {
        let name = get_str(e, "label").ok_or("edit needs a `label` string")?;
        alphabet
            .lookup(name)
            .ok_or_else(|| format!("unknown label '{name}': not in the corpus label space"))
    };
    match kind {
        "relabel" => Ok(Edit::Relabel {
            node: NodeId(get_u64(edit, "node").ok_or("relabel needs a `node` id")? as u32),
            label: label(edit)?,
        }),
        "insert-child" => Ok(Edit::InsertChild {
            parent: NodeId(
                get_u64(edit, "parent").ok_or("insert-child needs a `parent` id")? as u32,
            ),
            position: get_u64(edit, "position").unwrap_or(0) as usize,
            label: label(edit)?,
        }),
        "remove-subtree" => Ok(Edit::RemoveSubtree {
            node: NodeId(get_u64(edit, "node").ok_or("remove-subtree needs a `node` id")? as u32),
        }),
        other => Err(format!(
            "edit op must be relabel|insert-child|remove-subtree, got '{other}'"
        )),
    }
}

/// Handles one `snapshot` request: write a fresh snapshot generation of
/// every shard and compact the journal. Typed `engine` error when the
/// server runs without `--store`.
fn snapshot_line(corpus: &Corpus) -> String {
    match corpus.persist() {
        Ok(Some(r)) => Json::obj()
            .field("ok", true)
            .field("seq", r.seq)
            .field("snapshot_bytes", r.snapshot_bytes)
            .field("journal_reclaimed", r.journal_reclaimed)
            .render(),
        Ok(None) => err_line("engine", "server has no store (start with --store DIR)"),
        Err(e) => err_line("engine", &format!("snapshot failed: {e}")),
    }
}

fn slowlog_line(service: &QueryService) -> String {
    let entries: Vec<Json> = service.slow_queries().iter().map(|e| e.to_json()).collect();
    Json::obj()
        .field("ok", true)
        .field("entries", entries)
        .render()
}

/// The serve-tier request handler: routes parsed ops into the
/// [`QueryService`] and renders typed replies. Shared by the `twx-serve`
/// binary (over the `twx-netio` event loop) and in-process servers in
/// tests and benches.
pub struct ProtoHandler {
    service: QueryService,
    alphabet: Alphabet,
    started: Instant,
    net: Arc<NetStats>,
    max_conns: usize,
    gauge_uptime: Arc<Gauge>,
    gauge_connections: Arc<Gauge>,
    gauge_conns_open: Arc<Gauge>,
    gauge_conns_rejected: Arc<Gauge>,
    gauge_frames_rx: Arc<Gauge>,
    gauge_frames_tx: Arc<Gauge>,
    gauge_backpressure: Arc<Gauge>,
}

impl ProtoHandler {
    /// Wraps a running service. `net` is the connection-tier counter
    /// block shared with the event loop; `max_conns` is reported in
    /// `stats` (admission itself lives in the loop).
    pub fn new(service: QueryService, net: Arc<NetStats>, max_conns: usize) -> ProtoHandler {
        let alphabet = service.corpus().catalog().snapshot();
        let reg = twx_obs::metrics::global();
        ProtoHandler {
            service,
            alphabet,
            started: Instant::now(),
            net,
            max_conns,
            gauge_uptime: reg.gauge("twx_serve_uptime_seconds", &[]),
            gauge_connections: reg.gauge("twx_serve_connections_total", &[]),
            gauge_conns_open: reg.gauge("twx_serve_conns_open", &[]),
            gauge_conns_rejected: reg.gauge("twx_serve_conns_rejected_total", &[]),
            gauge_frames_rx: reg.gauge("twx_serve_frames_rx_total", &[]),
            gauge_frames_tx: reg.gauge("twx_serve_frames_tx_total", &[]),
            gauge_backpressure: reg.gauge("twx_serve_backpressure_stalls_total", &[]),
        }
    }

    /// The service inside (corpus access for snapshotters etc.).
    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// Tears the service down (drains workers) and returns the final
    /// counters. Call after the event loop has exited.
    pub fn finish(self) -> ServiceStats {
        self.service.shutdown()
    }

    fn uptime_s(&self) -> u64 {
        let s = self.started.elapsed().as_secs();
        self.gauge_uptime.set(s);
        s
    }

    /// Mirrors the event loop's counters into registry gauges so the
    /// Prometheus exposition carries them (called on `stats`/`metrics`).
    fn sync_net_gauges(&self) -> twx_netio::NetStatsSnapshot {
        let n = self.net.snapshot();
        self.gauge_connections.set(n.conns_total);
        self.gauge_conns_open.set(n.conns_open);
        self.gauge_conns_rejected.set(n.conns_rejected);
        self.gauge_frames_rx.set(n.frames_rx);
        self.gauge_frames_tx.set(n.frames_tx);
        self.gauge_backpressure.set(n.backpressure_stalls);
        n
    }

    fn stats_line(&self) -> String {
        let service = &self.service;
        let s = service.stats();
        let cache = service.cache_stats();
        let results = service.result_cache_stats();
        let n = self.sync_net_gauges();
        let mut reply = Json::obj()
            .field("ok", true)
            .field("uptime_s", self.uptime_s())
            .field("connections", n.conns_total)
            .field("conns_open", n.conns_open)
            .field("conns_rejected", n.conns_rejected)
            .field("max_conns", self.max_conns as u64)
            .field("frames_rx", n.frames_rx)
            .field("frames_tx", n.frames_tx)
            .field("backpressure_stalls", n.backpressure_stalls)
            .field("submitted", s.submitted)
            .field("completed", s.completed)
            .field("rejected", s.rejected)
            .field("timeouts", s.timeouts)
            .field("queued", s.queued)
            .field("queue_capacity", s.queue_capacity)
            .field("workers", s.workers)
            .field("eval_threads", s.eval_threads)
            .field("plan_cache_hits", cache.hits)
            .field("plan_cache_misses", cache.misses)
            .field("updates", s.updates)
            .field("stale_answers", s.stale_answers)
            .field("result_cache_hits", results.hits)
            .field("result_cache_misses", results.misses)
            .field("result_cache_carried", results.carried)
            .field("result_cache_invalidated", results.invalidated)
            .field("result_cache_entries", results.entries);
        // end-to-end request latency percentiles, in microseconds
        let hist = service.request_latency_histogram();
        for (name, ns) in hist.quantiles() {
            reply = reply.field(&format!("latency_{name}_us"), ns / 1_000);
        }
        reply
            .field("latency_mean_us", (hist.mean() / 1_000.0) as u64)
            .field("latency_count", hist.count())
            .render()
    }

    fn metrics_line(&self) -> String {
        self.sync_net_gauges();
        Json::obj()
            .field("ok", true)
            .field("metrics", twx_obs::metrics::global().render_prometheus())
            .render()
    }

    fn update_line(&self, req: &Json) -> String {
        let Some(doc) = get_u64(req, "doc") else {
            return err_line("protocol", "update op needs a `doc` id");
        };
        let edit = match parse_edit(req, &self.alphabet) {
            Ok(e) => e,
            Err(msg) => return err_line("protocol", &msg),
        };
        match self.service.update(DocId(doc as u32), &edit) {
            Ok(r) => Json::obj()
                .field("ok", true)
                .field("doc", r.id.0)
                .field("version", r.version.0)
                .field(
                    "affected",
                    vec![Json::from(r.affected.start), Json::from(r.affected.end)],
                )
                .field("nodes", r.new_len)
                .field("seq", r.seq)
                .render(),
            Err(e) => err_line("engine", &e.to_string()),
        }
    }

    fn query_line(&self, req: &Json) -> String {
        let Some(q) = get_str(req, "query") else {
            return err_line("protocol", "query op needs a `query` string");
        };
        if let Err(e) = parse_rpath_resolved(q, &self.alphabet) {
            return err_line("engine", &e.to_string());
        }
        let timeout = get_u64(req, "timeout_ms").map(Duration::from_millis);
        let outcome = if get_bool(req, "trace") {
            self.service.query_traced_with_timeout(q, timeout)
        } else {
            self.service.query_with_timeout(q, timeout)
        };
        match outcome {
            Ok(a) => answer_line(&a),
            Err(ServiceError::Overloaded { queued, capacity }) => Json::obj()
                .field("ok", false)
                .field("error", "overloaded")
                .field("queued", queued)
                .field("capacity", capacity)
                .render(),
            Err(ServiceError::ShutDown) => err_line("shutdown", "service closed"),
            Err(ServiceError::Engine(e)) => err_line("engine", &e.to_string()),
        }
    }

    /// Routes one request payload; the `bool` asks the transport to shut
    /// the server down after flushing the reply.
    fn route(&self, payload: &[u8]) -> (String, bool) {
        let Ok(text) = std::str::from_utf8(payload) else {
            return (err_line("protocol", "request is not valid utf-8"), false);
        };
        let req = match parse_json(text) {
            Err(e) => return (err_line("protocol", &format!("bad json: {e}")), false),
            Ok(req) => req,
        };
        match get_str(&req, "op") {
            Some("query") => (self.query_line(&req), false),
            Some("update") => (self.update_line(&req), false),
            Some("stats") => (self.stats_line(), false),
            Some("metrics") => (self.metrics_line(), false),
            Some("slowlog") => (slowlog_line(&self.service), false),
            Some("snapshot") => (snapshot_line(self.service.corpus()), false),
            Some("shutdown") => {
                let reply = Json::obj()
                    .field("ok", true)
                    .field("shutting_down", true)
                    .render();
                (reply, true)
            }
            _ => (
                err_line(
                    "protocol",
                    "op must be query|update|stats|metrics|slowlog|snapshot|shutdown",
                ),
                false,
            ),
        }
    }
}

impl twx_netio::Handler for ProtoHandler {
    fn handle(&self, payload: &[u8]) -> Reply {
        let (reply, shutdown) = self.route(payload);
        Reply {
            payload: reply.into_bytes(),
            shutdown,
        }
    }

    fn protocol_error(&self, detail: &str) -> Vec<u8> {
        err_line("protocol", detail).into_bytes()
    }

    fn overloaded(&self, open: usize, max_conns: usize) -> Vec<u8> {
        Json::obj()
            .field("ok", false)
            .field("error", "overloaded")
            .field("detail", "connection limit reached")
            .field("open", open as u64)
            .field("max_conns", max_conns as u64)
            .render()
            .into_bytes()
    }
}

//! `twx-serve` — a TCP front-end for the corpus query service, built on
//! the `twx-netio` event loop.
//!
//! One readiness-loop thread owns every socket (epoll, nonblocking);
//! requests dispatch into the query service's worker pool. Two framings
//! share the port, negotiated by the first byte of each connection:
//!
//! * **NDJSON** — one request per line, one response per line (any
//!   first byte other than `0xF7`).
//! * **Binary frames** — `F7 54 57 01` magic + u32 LE payload length +
//!   JSON payload, both directions (first byte `0xF7`, which cannot
//!   begin UTF-8 text).
//!
//! Requests may be **pipelined**: a client can write any number of
//! requests before reading a reply; replies come back in request order.
//! A connection that stops reading its replies is parked (write
//! backpressure) without affecting other connections.
//!
//! ```text
//! -> {"op":"query","query":"down*[b]","timeout_ms":250}
//! <- {"ok":true,"matches":2,"docs":[{"doc":0,"version":0,"matches":1},...],
//!     "timed_out":false,"latency_us":412,"trace_id":"…","shards":[...]}
//! -> {"op":"query","query":"down*[b]","trace":true}
//! <- {"ok":true,...,"trace":{"trace_id":"…","root":{...span tree...}}}
//! -> {"op":"update","doc":0,"edit":{"op":"relabel","node":1,"label":"c"}}
//! <- {"ok":true,"doc":0,"version":1,"affected":[1,2],"nodes":4,"seq":1}
//! -> {"op":"stats"}
//! <- {"ok":true,"submitted":3,...,"uptime_s":12,"connections":3,
//!     "conns_open":1,"frames_rx":4,"backpressure_stalls":0,
//!     "latency_p50_us":211,"latency_p99_us":733,...}
//! -> {"op":"metrics"}
//! <- {"ok":true,"metrics":"# TYPE twx_engine_eval_ns histogram\n..."}
//! -> {"op":"slowlog"}
//! <- {"ok":true,"entries":[{"trace_id":"…","query":"…","latency_us":…,
//!     "profile":{...}},...]}
//! -> {"op":"snapshot"}
//! <- {"ok":true,"seq":7,"snapshot_bytes":412,"journal_reclaimed":230}
//! -> {"op":"shutdown"}
//! <- {"ok":true,"shutting_down":true}
//! ```
//!
//! Errors come back typed: `{"ok":false,"error":"overloaded",...}` with
//! `error` one of `overloaded` | `shutdown` | `engine` | `protocol`.
//! Past `--max-conns` open connections, an accept is answered with one
//! typed `overloaded` line and closed.
//!
//! Usage:
//!
//! ```text
//! twx-serve [--port P] [--shards N] [--workers N] [--queue N]
//!           [--backend product|automaton|logic|vm] [--eval-threads N]
//!           [--timeout-ms MS] [--max-conns N] [--dispatchers N]
//!           [--backpressure-bytes N]
//!           [--slowlog N] [--synthetic DOCSxNODES [--seed S]]
//!           [--store DIR [--fsync-every N]]
//!           [FILE.xml|FILE.sexp ...]
//! ```
//!
//! `--eval-threads 0` (the default) auto-sizes intra-query parallelism
//! to `host cores / workers` so concurrent shard evaluations share the
//! machine instead of oversubscribing it.
//!
//! `--port 0` binds an ephemeral port; the chosen address is printed as
//! `twx-serve listening on 127.0.0.1:PORT` so scripts can scrape it.
//!
//! With `--store DIR` the corpus is **durable**: if `DIR` already holds
//! a store the server recovers it on boot (ignoring FILEs and
//! `--synthetic` — the store is the source of truth; `--shards` must
//! then match the persisted shard count) and every committed update is
//! journalled before it is acknowledged, so a kill-and-restart round
//! trip preserves documents, versions, and the commit sequence exactly.
//! The `snapshot` op (`{"op":"snapshot"}`) writes a fresh snapshot
//! generation and compacts the journal; a background snapshotter does
//! the same automatically once the journal passes 1 MiB.

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use treewalk::{Backend, Engine};
use twx_corpus::proto::{ProtoHandler, MAX_REQUEST_BYTES};
use twx_corpus::service::default_eval_threads;
use twx_corpus::{Corpus, QueryService, ServiceConfig, StoreConfig};
use twx_netio::{NetStats, ServerConfig};
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::SplitMix64;
use twx_xtree::Catalog;

struct Args {
    port: u16,
    shards: usize,
    workers: usize,
    queue: usize,
    backend: Backend,
    eval_threads: usize,
    timeout: Option<Duration>,
    slowlog: usize,
    max_conns: usize,
    dispatchers: usize,
    backpressure_bytes: usize,
    synthetic: Option<(usize, usize)>,
    seed: u64,
    store: Option<String>,
    fsync_every: u64,
    files: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: twx-serve [--port P] [--shards N] [--workers N] [--queue N] \
         [--backend product|automaton|logic|vm] [--eval-threads N] \
         [--timeout-ms MS] [--max-conns N] [--dispatchers N] \
         [--backpressure-bytes N] [--slowlog N] \
         [--synthetic DOCSxNODES [--seed S]] [--store DIR [--fsync-every N]] \
         [FILE.xml|FILE.sexp ...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        port: 7878,
        shards: 4,
        workers: 0, // 0 = auto below
        queue: 256,
        backend: Backend::Product,
        eval_threads: 0, // 0 = auto: host cores / workers
        timeout: None,
        slowlog: 16,
        max_conns: 10_000,
        dispatchers: 0, // 0 = auto: match the worker pool
        backpressure_bytes: 256 * 1024,
        synthetic: None,
        seed: 1,
        store: None,
        fsync_every: 1,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--port" => args.port = val("--port").parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = val("--shards").parse().unwrap_or_else(|_| usage()),
            "--workers" => args.workers = val("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => args.queue = val("--queue").parse().unwrap_or_else(|_| usage()),
            "--eval-threads" => {
                args.eval_threads = val("--eval-threads").parse().unwrap_or_else(|_| usage());
            }
            "--backend" => {
                args.backend = match val("--backend").as_str() {
                    "product" => Backend::Product,
                    "automaton" => Backend::Automaton,
                    "logic" => Backend::Logic,
                    "vm" => Backend::Vm,
                    _ => usage(),
                }
            }
            "--timeout-ms" => {
                let ms: u64 = val("--timeout-ms").parse().unwrap_or_else(|_| usage());
                args.timeout = Some(Duration::from_millis(ms));
            }
            "--slowlog" => args.slowlog = val("--slowlog").parse().unwrap_or_else(|_| usage()),
            "--max-conns" => {
                args.max_conns = val("--max-conns").parse().unwrap_or_else(|_| usage());
                if args.max_conns == 0 {
                    usage();
                }
            }
            "--dispatchers" => {
                args.dispatchers = val("--dispatchers").parse().unwrap_or_else(|_| usage());
            }
            "--backpressure-bytes" => {
                args.backpressure_bytes = val("--backpressure-bytes")
                    .parse()
                    .unwrap_or_else(|_| usage());
                if args.backpressure_bytes == 0 {
                    usage();
                }
            }
            "--synthetic" => {
                let spec = val("--synthetic");
                let (d, n) = spec.split_once('x').unwrap_or_else(|| usage());
                args.synthetic = Some((
                    d.parse().unwrap_or_else(|_| usage()),
                    n.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--store" => args.store = Some(val("--store")),
            "--fsync-every" => {
                args.fsync_every = val("--fsync-every").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => args.files.push(f.to_string()),
            _ => usage(),
        }
    }
    if args.workers == 0 {
        args.workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
    }
    if args.eval_threads == 0 {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        args.eval_threads = default_eval_threads(cores, args.workers);
    }
    if args.dispatchers == 0 {
        args.dispatchers = args.workers;
    }
    args
}

fn build_corpus(args: &Args) -> Result<Corpus, String> {
    let store_cfg = StoreConfig {
        fsync_every: args.fsync_every.max(1),
        ..StoreConfig::default()
    };
    // an existing store is the source of truth: recover it, ignore inputs
    if let Some(dir) = &args.store {
        if twx_store::Store::exists(dir) {
            let (corpus, report) =
                Corpus::recover(dir, store_cfg).map_err(|e| format!("recover {dir}: {e}"))?;
            eprintln!(
                "recovered store {dir}: seq {}, {} records replayed, {} skipped, \
                 {} torn bytes truncated, {} stale snapshots skipped, {:.1} ms",
                corpus.seq(),
                report.records_replayed,
                report.records_skipped,
                report.truncated_bytes,
                report.stale_snapshots_skipped,
                report.recovery_ns as f64 / 1e6,
            );
            return Ok(corpus);
        }
    }
    let catalog = Arc::new(Catalog::from_names(["a", "b", "c", "d"]));
    let mut b = Corpus::builder(Arc::clone(&catalog), args.shards);
    for f in &args.files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        if f.ends_with(".xml") {
            b.add_xml(&text).map_err(|e| format!("{f}: {e}"))?;
        } else {
            b.add_sexp(&text).map_err(|e| format!("{f}: {e}"))?;
        }
    }
    if let Some((docs, nodes)) = args.synthetic {
        let mut rng = SplitMix64::seed_from_u64(args.seed);
        for _ in 0..docs {
            b.add_document(random_document_in(
                Shape::Recursive,
                nodes,
                &catalog,
                &mut rng,
            ));
        }
    }
    if let Some(dir) = &args.store {
        b = b.with_store(dir).store_config(store_cfg);
    }
    let corpus = b.try_build().map_err(|e| format!("create store: {e}"))?;
    if corpus.n_docs() == 0 {
        return Err("empty corpus: pass FILEs and/or --synthetic DOCSxNODES".into());
    }
    Ok(corpus)
}

fn main() -> ExitCode {
    let args = parse_args();
    let corpus = match build_corpus(&args) {
        Ok(c) => Arc::new(c),
        Err(e) => {
            eprintln!("twx-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let service = QueryService::new(
        Arc::clone(&corpus),
        Engine::with_backend(args.backend).with_parallelism(args.eval_threads),
        ServiceConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            default_timeout: args.timeout,
            slowlog_capacity: args.slowlog,
        },
    );
    // with a store: compact the journal in the background once it
    // passes 1 MiB (explicit `snapshot` ops still work at any time)
    let _snapshotter = corpus
        .store()
        .is_some()
        .then(|| corpus.spawn_snapshotter(1 << 20, Duration::from_millis(200)));
    eprintln!(
        "corpus: {} docs / {} nodes in {} shards; {} workers, {} dispatchers, \
         {} eval threads, backend {:?}, max {} conns{}",
        corpus.n_docs(),
        corpus.total_nodes(),
        corpus.n_shards(),
        args.workers,
        args.dispatchers,
        args.eval_threads,
        args.backend,
        args.max_conns,
        if let Some(s) = corpus.store() {
            format!("; store {}", s.dir().display())
        } else {
            String::new()
        },
    );
    // each connection costs one descriptor; leave headroom for the
    // store, epoll, eventfd, and stdio
    twx_netio::raise_nofile_limit(args.max_conns as u64 + 128);
    let listener = match TcpListener::bind(("127.0.0.1", args.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("twx-serve: bind 127.0.0.1:{}: {e}", args.port);
            return ExitCode::from(2);
        }
    };
    let addr = listener.local_addr().expect("local addr");
    // scraped by scripts — keep the format stable
    println!("twx-serve listening on {addr}");
    std::io::stdout().flush().ok();
    let net = Arc::new(NetStats::default());
    let handler = Arc::new(ProtoHandler::new(service, Arc::clone(&net), args.max_conns));
    let cfg = ServerConfig {
        max_conns: args.max_conns,
        dispatchers: args.dispatchers,
        max_request_bytes: MAX_REQUEST_BYTES,
        outbuf_hiwat: args.backpressure_bytes,
        ..ServerConfig::default()
    };
    if let Err(e) = twx_netio::serve(listener, Arc::clone(&handler), cfg, Arc::clone(&net)) {
        eprintln!("twx-serve: event loop: {e}");
    }
    // the loop has exited and its dispatchers are joined, so this is the
    // last Arc: tear the service down and write the parting snapshot
    let handler = Arc::try_unwrap(handler)
        .unwrap_or_else(|_| unreachable!("event loop dropped its handler refs"));
    let final_stats = handler.finish();
    match corpus.persist() {
        Ok(_) => {}
        Err(e) => eprintln!("twx-serve: final snapshot failed: {e}"),
    }
    let n = net.snapshot();
    eprintln!(
        "twx-serve: drained; {} submitted, {} completed, {} rejected, {} timeouts; \
         {} conns ({} refused), {} frames in / {} out, {} backpressure stalls",
        final_stats.submitted,
        final_stats.completed,
        final_stats.rejected,
        final_stats.timeouts,
        n.conns_total,
        n.conns_rejected,
        n.frames_rx,
        n.frames_tx,
        n.backpressure_stalls,
    );
    ExitCode::SUCCESS
}

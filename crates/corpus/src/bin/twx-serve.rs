//! `twx-serve` — a TCP front-end for the corpus query service.
//!
//! Newline-delimited JSON over a plain TCP socket (std-only; no HTTP
//! stack). One request per line, one response per line:
//!
//! ```text
//! -> {"op":"query","query":"down*[b]","timeout_ms":250}
//! <- {"ok":true,"matches":2,"docs":[{"doc":0,"version":0,"matches":1},...],
//!     "timed_out":false,"latency_us":412,"trace_id":"…","shards":[...]}
//! -> {"op":"query","query":"down*[b]","trace":true}
//! <- {"ok":true,...,"trace":{"trace_id":"…","root":{...span tree...}}}
//! -> {"op":"update","doc":0,"edit":{"op":"relabel","node":1,"label":"c"}}
//! <- {"ok":true,"doc":0,"version":1,"affected":[1,2],"nodes":4,"seq":1}
//! -> {"op":"stats"}
//! <- {"ok":true,"submitted":3,...,"uptime_s":12,"connections":3,
//!     "latency_p50_us":211,"latency_p99_us":733,...}
//! -> {"op":"metrics"}
//! <- {"ok":true,"metrics":"# TYPE twx_engine_eval_ns histogram\n..."}
//! -> {"op":"slowlog"}
//! <- {"ok":true,"entries":[{"trace_id":"…","query":"…","latency_us":…,
//!     "profile":{...}},...]}
//! -> {"op":"snapshot"}
//! <- {"ok":true,"seq":7,"snapshot_bytes":412,"journal_reclaimed":230}
//! -> {"op":"shutdown"}
//! <- {"ok":true,"shutting_down":true}
//! ```
//!
//! Errors come back typed: `{"ok":false,"error":"overloaded",...}` with
//! `error` one of `overloaded` | `shutdown` | `engine` | `protocol`.
//!
//! Usage:
//!
//! ```text
//! twx-serve [--port P] [--shards N] [--workers N] [--queue N]
//!           [--backend product|automaton|logic|vm] [--eval-threads N]
//!           [--timeout-ms MS]
//!           [--slowlog N] [--synthetic DOCSxNODES [--seed S]]
//!           [--store DIR [--fsync-every N]]
//!           [FILE.xml|FILE.sexp ...]
//! ```
//!
//! `--port 0` binds an ephemeral port; the chosen address is printed as
//! `twx-serve listening on 127.0.0.1:PORT` so scripts can scrape it.
//!
//! With `--store DIR` the corpus is **durable**: if `DIR` already holds
//! a store the server recovers it on boot (ignoring FILEs and
//! `--synthetic` — the store is the source of truth; `--shards` must
//! then match the persisted shard count) and every committed update is
//! journalled before it is acknowledged, so a kill-and-restart round
//! trip preserves documents, versions, and the commit sequence exactly.
//! The `snapshot` op (`{"op":"snapshot"}`) writes a fresh snapshot
//! generation and compacts the journal; a background snapshotter does
//! the same automatically once the journal passes 1 MiB.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use treewalk::{Backend, Engine};
use twx_corpus::{
    Corpus, CorpusAnswer, DocId, QueryService, ServiceConfig, ServiceError, StoreConfig,
};
use twx_obs::json::{parse as parse_json, Json};
use twx_obs::metrics::Gauge;
use twx_regxpath::parser::parse_rpath_resolved;
use twx_xtree::edit::Edit;
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::SplitMix64;
use twx_xtree::{Alphabet, Catalog, NodeId};

struct Args {
    port: u16,
    shards: usize,
    workers: usize,
    queue: usize,
    backend: Backend,
    eval_threads: usize,
    timeout: Option<Duration>,
    slowlog: usize,
    synthetic: Option<(usize, usize)>,
    seed: u64,
    store: Option<String>,
    fsync_every: u64,
    files: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: twx-serve [--port P] [--shards N] [--workers N] [--queue N] \
         [--backend product|automaton|logic|vm] [--eval-threads N] \
         [--timeout-ms MS] [--slowlog N] \
         [--synthetic DOCSxNODES [--seed S]] [--store DIR [--fsync-every N]] \
         [FILE.xml|FILE.sexp ...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        port: 7878,
        shards: 4,
        workers: 0, // 0 = auto below
        queue: 256,
        backend: Backend::Product,
        eval_threads: 1,
        timeout: None,
        slowlog: 16,
        synthetic: None,
        seed: 1,
        store: None,
        fsync_every: 1,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--port" => args.port = val("--port").parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = val("--shards").parse().unwrap_or_else(|_| usage()),
            "--workers" => args.workers = val("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => args.queue = val("--queue").parse().unwrap_or_else(|_| usage()),
            "--eval-threads" => {
                args.eval_threads = val("--eval-threads").parse().unwrap_or_else(|_| usage());
                if args.eval_threads == 0 {
                    usage();
                }
            }
            "--backend" => {
                args.backend = match val("--backend").as_str() {
                    "product" => Backend::Product,
                    "automaton" => Backend::Automaton,
                    "logic" => Backend::Logic,
                    "vm" => Backend::Vm,
                    _ => usage(),
                }
            }
            "--timeout-ms" => {
                let ms: u64 = val("--timeout-ms").parse().unwrap_or_else(|_| usage());
                args.timeout = Some(Duration::from_millis(ms));
            }
            "--slowlog" => args.slowlog = val("--slowlog").parse().unwrap_or_else(|_| usage()),
            "--synthetic" => {
                let spec = val("--synthetic");
                let (d, n) = spec.split_once('x').unwrap_or_else(|| usage());
                args.synthetic = Some((
                    d.parse().unwrap_or_else(|_| usage()),
                    n.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--store" => args.store = Some(val("--store")),
            "--fsync-every" => {
                args.fsync_every = val("--fsync-every").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => args.files.push(f.to_string()),
            _ => usage(),
        }
    }
    if args.workers == 0 {
        args.workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
    }
    args
}

fn build_corpus(args: &Args) -> Result<Corpus, String> {
    let store_cfg = StoreConfig {
        fsync_every: args.fsync_every.max(1),
        ..StoreConfig::default()
    };
    // an existing store is the source of truth: recover it, ignore inputs
    if let Some(dir) = &args.store {
        if twx_store::Store::exists(dir) {
            let (corpus, report) =
                Corpus::recover(dir, store_cfg).map_err(|e| format!("recover {dir}: {e}"))?;
            eprintln!(
                "recovered store {dir}: seq {}, {} records replayed, {} skipped, \
                 {} torn bytes truncated, {} stale snapshots skipped, {:.1} ms",
                corpus.seq(),
                report.records_replayed,
                report.records_skipped,
                report.truncated_bytes,
                report.stale_snapshots_skipped,
                report.recovery_ns as f64 / 1e6,
            );
            return Ok(corpus);
        }
    }
    let catalog = Arc::new(Catalog::from_names(["a", "b", "c", "d"]));
    let mut b = Corpus::builder(Arc::clone(&catalog), args.shards);
    for f in &args.files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        if f.ends_with(".xml") {
            b.add_xml(&text).map_err(|e| format!("{f}: {e}"))?;
        } else {
            b.add_sexp(&text).map_err(|e| format!("{f}: {e}"))?;
        }
    }
    if let Some((docs, nodes)) = args.synthetic {
        let mut rng = SplitMix64::seed_from_u64(args.seed);
        for _ in 0..docs {
            b.add_document(random_document_in(
                Shape::Recursive,
                nodes,
                &catalog,
                &mut rng,
            ));
        }
    }
    if let Some(dir) = &args.store {
        b = b.with_store(dir).store_config(store_cfg);
    }
    let corpus = b.try_build().map_err(|e| format!("create store: {e}"))?;
    if corpus.n_docs() == 0 {
        return Err("empty corpus: pass FILEs and/or --synthetic DOCSxNODES".into());
    }
    Ok(corpus)
}

// -- tiny accessors over the hand-rolled Json enum --

fn get<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    match obj {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Option<&'a str> {
    match get(obj, key)? {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn get_u64(obj: &Json, key: &str) -> Option<u64> {
    match get(obj, key)? {
        Json::Int(n) => Some(*n),
        Json::Num(x) if *x >= 0.0 => Some(*x as u64),
        _ => None,
    }
}

fn get_bool(obj: &Json, key: &str) -> bool {
    matches!(get(obj, key), Some(Json::Bool(true)))
}

fn err_line(kind: &str, detail: &str) -> String {
    Json::obj()
        .field("ok", false)
        .field("error", kind)
        .field("detail", detail)
        .render()
}

fn answer_line(a: &CorpusAnswer) -> String {
    let docs: Vec<Json> = a
        .per_doc
        .iter()
        .map(|(id, version, set)| {
            Json::obj()
                .field("doc", id.0)
                .field("version", version.0)
                .field("matches", set.count())
        })
        .collect();
    let shards: Vec<Json> = a
        .shards
        .iter()
        .map(|t| {
            Json::obj()
                .field("shard", t.shard)
                .field("docs", t.docs)
                .field("skipped_docs", t.skipped_docs)
                .field("queue_wait_us", t.queue_wait.as_micros() as u64)
                .field("eval_us", t.eval.as_micros() as u64)
                .field("timed_out", t.timed_out)
        })
        .collect();
    let mut reply = Json::obj()
        .field("ok", true)
        .field("matches", a.total_matches)
        .field("docs", docs)
        .field("timed_out", a.timed_out)
        .field("latency_us", a.latency.as_micros() as u64)
        .field("trace_id", a.trace_id.to_hex())
        .field("shards", shards);
    if let Some(tree) = &a.trace {
        reply = reply.field("trace", tree.to_json());
    }
    reply.render()
}

/// Parses the `edit` object of an `update` request into a typed
/// [`Edit`], resolving the label **read-only** against the corpus
/// alphabet (unknown labels are an error, never an intern).
fn parse_edit(req: &Json, alphabet: &Alphabet) -> Result<Edit, String> {
    let edit = get(req, "edit").ok_or("update op needs an `edit` object")?;
    let kind = get_str(edit, "op").ok_or("edit needs an `op` string")?;
    let label = |e: &Json| -> Result<_, String> {
        let name = get_str(e, "label").ok_or("edit needs a `label` string")?;
        alphabet
            .lookup(name)
            .ok_or_else(|| format!("unknown label '{name}': not in the corpus label space"))
    };
    match kind {
        "relabel" => Ok(Edit::Relabel {
            node: NodeId(get_u64(edit, "node").ok_or("relabel needs a `node` id")? as u32),
            label: label(edit)?,
        }),
        "insert-child" => Ok(Edit::InsertChild {
            parent: NodeId(
                get_u64(edit, "parent").ok_or("insert-child needs a `parent` id")? as u32,
            ),
            position: get_u64(edit, "position").unwrap_or(0) as usize,
            label: label(edit)?,
        }),
        "remove-subtree" => Ok(Edit::RemoveSubtree {
            node: NodeId(get_u64(edit, "node").ok_or("remove-subtree needs a `node` id")? as u32),
        }),
        other => Err(format!(
            "edit op must be relabel|insert-child|remove-subtree, got '{other}'"
        )),
    }
}

/// Handles one `update` request line: parse → typed edit → commit →
/// receipt (or a typed error that leaves the connection open).
fn update_line(req: &Json, service: &QueryService, alphabet: &Alphabet) -> String {
    let Some(doc) = get_u64(req, "doc") else {
        return err_line("protocol", "update op needs a `doc` id");
    };
    let edit = match parse_edit(req, alphabet) {
        Ok(e) => e,
        Err(msg) => return err_line("protocol", &msg),
    };
    match service.update(DocId(doc as u32), &edit) {
        Ok(r) => Json::obj()
            .field("ok", true)
            .field("doc", r.id.0)
            .field("version", r.version.0)
            .field(
                "affected",
                vec![Json::from(r.affected.start), Json::from(r.affected.end)],
            )
            .field("nodes", r.new_len)
            .field("seq", r.seq)
            .render(),
        Err(e) => err_line("engine", &e.to_string()),
    }
}

/// Process-level serving state alongside the query service: start time
/// for uptime, a connection counter, and their registry gauges (so the
/// `metrics` exposition carries them too).
struct Server {
    service: QueryService,
    started: Instant,
    connections: u64,
    gauge_uptime: Arc<Gauge>,
    gauge_connections: Arc<Gauge>,
}

impl Server {
    fn new(service: QueryService) -> Server {
        let reg = twx_obs::metrics::global();
        Server {
            service,
            started: Instant::now(),
            connections: 0,
            gauge_uptime: reg.gauge("twx_serve_uptime_seconds", &[]),
            gauge_connections: reg.gauge("twx_serve_connections_total", &[]),
        }
    }

    fn on_connection(&mut self) {
        self.connections += 1;
        self.gauge_connections.set(self.connections);
    }

    fn uptime_s(&self) -> u64 {
        let s = self.started.elapsed().as_secs();
        self.gauge_uptime.set(s);
        s
    }
}

fn stats_line(server: &Server) -> String {
    let service = &server.service;
    let s = service.stats();
    let cache = service.cache_stats();
    let results = service.result_cache_stats();
    let mut reply = Json::obj()
        .field("ok", true)
        .field("uptime_s", server.uptime_s())
        .field("connections", server.connections)
        .field("submitted", s.submitted)
        .field("completed", s.completed)
        .field("rejected", s.rejected)
        .field("timeouts", s.timeouts)
        .field("queued", s.queued)
        .field("queue_capacity", s.queue_capacity)
        .field("workers", s.workers)
        .field("eval_threads", s.eval_threads)
        .field("plan_cache_hits", cache.hits)
        .field("plan_cache_misses", cache.misses)
        .field("updates", s.updates)
        .field("stale_answers", s.stale_answers)
        .field("result_cache_hits", results.hits)
        .field("result_cache_misses", results.misses)
        .field("result_cache_carried", results.carried)
        .field("result_cache_invalidated", results.invalidated)
        .field("result_cache_entries", results.entries);
    // end-to-end request latency percentiles, in microseconds
    let hist = service.request_latency_histogram();
    for (name, ns) in hist.quantiles() {
        reply = reply.field(&format!("latency_{name}_us"), ns / 1_000);
    }
    reply
        .field("latency_mean_us", (hist.mean() / 1_000.0) as u64)
        .field("latency_count", hist.count())
        .render()
}

/// Handles a `snapshot` request: write a fresh snapshot generation of
/// every shard and compact the journal. Typed `engine` error when the
/// server runs without `--store`.
fn snapshot_line(corpus: &Corpus) -> String {
    match corpus.persist() {
        Ok(Some(r)) => Json::obj()
            .field("ok", true)
            .field("seq", r.seq)
            .field("snapshot_bytes", r.snapshot_bytes)
            .field("journal_reclaimed", r.journal_reclaimed)
            .render(),
        Ok(None) => err_line("engine", "server has no store (start with --store DIR)"),
        Err(e) => err_line("engine", &format!("snapshot failed: {e}")),
    }
}

fn metrics_line() -> String {
    Json::obj()
        .field("ok", true)
        .field("metrics", twx_obs::metrics::global().render_prometheus())
        .render()
}

fn slowlog_line(service: &QueryService) -> String {
    let entries: Vec<Json> = service.slow_queries().iter().map(|e| e.to_json()).collect();
    Json::obj()
        .field("ok", true)
        .field("entries", entries)
        .render()
}

/// Requests longer than this are refused with a typed `protocol` error
/// (the connection stays open). Far above any legitimate query line, far
/// below anything that could pressure memory.
const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Serves one connection; returns `true` if a shutdown was requested.
///
/// `alphabet` is the corpus label space, used to validate queries
/// **read-only** before submission: `prepare_in` would intern unknown
/// labels into the shared catalog, and a network client must not be able
/// to grow the server's label space — it gets a typed `engine` error
/// instead.
fn serve_conn(stream: TcpStream, server: &Server, alphabet: &Alphabet) -> std::io::Result<bool> {
    let service = &server.service;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if line.len() > MAX_REQUEST_BYTES {
            let reply = err_line(
                "protocol",
                &format!(
                    "request of {} bytes exceeds the {MAX_REQUEST_BYTES}-byte limit",
                    line.len()
                ),
            );
            writer.write_all(reply.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            continue;
        }
        let reply = match parse_json(&line) {
            Err(e) => err_line("protocol", &format!("bad json: {e}")),
            Ok(req) => match get_str(&req, "op") {
                Some("query") => match get_str(&req, "query") {
                    None => err_line("protocol", "query op needs a `query` string"),
                    Some(q) => match parse_rpath_resolved(q, alphabet) {
                        Err(e) => err_line("engine", &e.to_string()),
                        Ok(_) => {
                            let timeout = get_u64(&req, "timeout_ms").map(Duration::from_millis);
                            let outcome = if get_bool(&req, "trace") {
                                service.query_traced_with_timeout(q, timeout)
                            } else {
                                service.query_with_timeout(q, timeout)
                            };
                            match outcome {
                                Ok(a) => answer_line(&a),
                                Err(ServiceError::Overloaded { queued, capacity }) => Json::obj()
                                    .field("ok", false)
                                    .field("error", "overloaded")
                                    .field("queued", queued)
                                    .field("capacity", capacity)
                                    .render(),
                                Err(ServiceError::ShutDown) => {
                                    err_line("shutdown", "service closed")
                                }
                                Err(ServiceError::Engine(e)) => err_line("engine", &e.to_string()),
                            }
                        }
                    },
                },
                Some("update") => update_line(&req, service, alphabet),
                Some("stats") => stats_line(server),
                Some("metrics") => metrics_line(),
                Some("slowlog") => slowlog_line(service),
                Some("snapshot") => snapshot_line(service.corpus()),
                Some("shutdown") => {
                    let reply = Json::obj()
                        .field("ok", true)
                        .field("shutting_down", true)
                        .render();
                    // a client may hang up right after sending shutdown;
                    // the intent still stands, so ignore reply failures
                    let _ = writer
                        .write_all(reply.as_bytes())
                        .and_then(|_| writer.write_all(b"\n"))
                        .and_then(|_| writer.flush());
                    return Ok(true);
                }
                _ => err_line(
                    "protocol",
                    "op must be query|update|stats|metrics|slowlog|snapshot|shutdown",
                ),
            },
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(false)
}

fn main() -> ExitCode {
    let args = parse_args();
    let corpus = match build_corpus(&args) {
        Ok(c) => Arc::new(c),
        Err(e) => {
            eprintln!("twx-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let service = QueryService::new(
        Arc::clone(&corpus),
        Engine::with_backend(args.backend).with_parallelism(args.eval_threads),
        ServiceConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            default_timeout: args.timeout,
            slowlog_capacity: args.slowlog,
        },
    );
    let mut server = Server::new(service);
    // with a store: compact the journal in the background once it
    // passes 1 MiB (explicit `snapshot` ops still work at any time)
    let _snapshotter = corpus
        .store()
        .is_some()
        .then(|| corpus.spawn_snapshotter(1 << 20, Duration::from_millis(200)));
    eprintln!(
        "corpus: {} docs / {} nodes in {} shards; {} workers, backend {:?}{}",
        corpus.n_docs(),
        corpus.total_nodes(),
        corpus.n_shards(),
        args.workers,
        args.backend,
        if let Some(s) = corpus.store() {
            format!("; store {}", s.dir().display())
        } else {
            String::new()
        },
    );
    let listener = match TcpListener::bind(("127.0.0.1", args.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("twx-serve: bind 127.0.0.1:{}: {e}", args.port);
            return ExitCode::from(2);
        }
    };
    let addr = listener.local_addr().expect("local addr");
    // scraped by scripts — keep the format stable
    println!("twx-serve listening on {addr}");
    std::io::stdout().flush().ok();
    let alphabet = corpus.catalog().snapshot();
    for stream in listener.incoming() {
        match stream {
            Err(e) => eprintln!("twx-serve: accept: {e}"),
            Ok(s) => {
                server.on_connection();
                match serve_conn(s, &server, &alphabet) {
                    Ok(true) => break,
                    Ok(false) => {}
                    Err(e) => eprintln!("twx-serve: connection: {e}"),
                }
            }
        }
    }
    let final_stats = server.service.shutdown();
    // parting snapshot so the next boot replays an empty journal
    match corpus.persist() {
        Ok(_) => {}
        Err(e) => eprintln!("twx-serve: final snapshot failed: {e}"),
    }
    eprintln!(
        "twx-serve: drained; {} submitted, {} completed, {} rejected, {} timeouts",
        final_stats.submitted, final_stats.completed, final_stats.rejected, final_stats.timeouts,
    );
    ExitCode::SUCCESS
}

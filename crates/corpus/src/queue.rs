//! A bounded multi-producer/multi-consumer queue on `std` primitives.
//!
//! The offline build rules out `crossbeam`; a `Mutex<VecDeque>` plus a
//! `Condvar` is entirely sufficient for a serving queue whose items are
//! shard-sized units of work (the lock is held for a push or a pop, never
//! for the work itself).
//!
//! Two properties matter for the service built on top:
//!
//! * **Admission is all-or-nothing and never blocks.** A request fans out
//!   into one item per shard; [`BoundedQueue::try_push_all`] either
//!   admits the whole batch within the capacity bound or rejects it
//!   immediately with [`PushError::Full`] — callers get a typed
//!   `Overloaded` signal instead of unbounded queueing or a deadlocked
//!   producer.
//! * **Close drains.** After [`BoundedQueue::close`], producers are
//!   refused but consumers keep popping until the queue is empty, then
//!   observe `None` — the graceful-shutdown contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// Admitting the batch would exceed the capacity bound.
    Full {
        /// Items queued at the time of refusal.
        queued: usize,
        /// The capacity bound.
        capacity: usize,
    },
    /// The queue was closed.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue (see the [module docs](self)).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits every item of `batch` atomically, or none: if the batch
    /// does not fit under the capacity bound (or the queue is closed)
    /// the whole batch is handed back with the reason. Never blocks.
    pub fn try_push_all(&self, batch: Vec<T>) -> Result<(), (PushError, Vec<T>)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err((PushError::Closed, batch));
        }
        if inner.items.len() + batch.len() > self.capacity {
            return Err((
                PushError::Full {
                    queued: inner.items.len(),
                    capacity: self.capacity,
                },
                batch,
            ));
        }
        let n = batch.len();
        inner.items.extend(batch);
        drop(inner);
        if n == 1 {
            self.not_empty.notify_one();
        } else if n > 1 {
            self.not_empty.notify_all();
        }
        Ok(())
    }

    /// Pops the oldest item, blocking while the queue is empty but open.
    /// Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Refuses all further pushes and wakes every blocked consumer.
    /// Already-queued items remain poppable (close-then-drain).
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        q.try_push_all(vec![1, 2, 3]).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn admission_is_all_or_nothing() {
        let q = BoundedQueue::new(3);
        q.try_push_all(vec![1, 2]).unwrap();
        let (err, batch) = q.try_push_all(vec![3, 4]).unwrap_err();
        assert_eq!(
            err,
            PushError::Full {
                queued: 2,
                capacity: 3
            }
        );
        assert_eq!(batch, vec![3, 4]);
        assert_eq!(q.len(), 2, "no partial admission");
        // a batch that fits is still admitted
        q.try_push_all(vec![5]).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(8);
        q.try_push_all(vec![1, 2]).unwrap();
        q.close();
        assert_eq!(
            q.try_push_all(vec![3]).unwrap_err().0,
            PushError::Closed,
            "no pushes after close"
        );
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push_all(vec![7]).unwrap();
        q.close();
        let got: Vec<Option<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got.iter().filter(|o| o.is_some()).count(), 1);
        assert_eq!(got.iter().filter(|o| o.is_none()).count(), 2);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(1024));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        std::thread::scope(|s| {
            for p in 0..4 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..64 {
                        q.try_push_all(vec![p * 64 + i]).unwrap();
                    }
                });
            }
        });
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..256).collect::<Vec<u32>>());
    }
}

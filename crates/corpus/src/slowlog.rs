//! The slow-query log: a bounded, concurrent record of the worst
//! requests a [`QueryService`](crate::QueryService) has completed.
//!
//! Percentile histograms say *that* a tail exists; the slow log says
//! *which requests* are in it. Every completed request is offered to
//! the log with its end-to-end latency; the log keeps the `capacity`
//! slowest, each carrying everything needed to reproduce and explain
//! it: the [`TraceId`] (joinable against traced replies and server
//! logs), the query text, the backend, outcome flags, and the merged
//! observability counters of every worker that touched the request —
//! the same structural-cost evidence an EXPLAIN profile reports.
//!
//! The log is a min-threshold reservoir, not a ring of recent entries:
//! a burst of fast requests can never wash out the record of a slow
//! one. [`SlowLog::record`] is O(capacity) under a mutex, but it is
//! called once per *request* (not per shard or per document), and
//! capacity is small (default 16).

use std::sync::Mutex;
use std::time::Duration;
use treewalk::Backend;
use twx_obs::json::Json;
use twx_obs::{Counters, TraceId};

/// One retained slow request.
#[derive(Clone, Debug)]
pub struct SlowLogEntry {
    /// The request's trace id (matches the id in its `CorpusAnswer`).
    pub trace_id: TraceId,
    /// The query text as submitted.
    pub query: String,
    /// The backend the plan was compiled for.
    pub backend: Backend,
    /// Submit-to-completion latency.
    pub latency: Duration,
    /// Whether the answer was partial (deadline expired).
    pub timed_out: bool,
    /// Whether the answer was stale (a commit landed after its pin).
    pub stale: bool,
    /// Total matched nodes.
    pub total_matches: u64,
    /// Merged worker counters — the request's cost profile.
    pub counters: Counters,
}

impl SlowLogEntry {
    /// JSON rendering: identity, outcome, and the non-zero counters
    /// under `"profile"`.
    pub fn to_json(&self) -> Json {
        let mut profile = Json::obj();
        for (name, v) in self.counters.iter() {
            if v > 0 {
                profile = profile.field(name, v);
            }
        }
        Json::obj()
            .field("trace_id", self.trace_id.to_hex())
            .field("query", self.query.as_str())
            .field("backend", self.backend.name())
            .field("latency_us", self.latency.as_micros() as u64)
            .field("timed_out", self.timed_out)
            .field("stale", self.stale)
            .field("total_matches", self.total_matches)
            .field("profile", profile)
    }
}

/// A bounded worst-N-by-latency log (see the [module docs](self)).
#[derive(Debug)]
pub struct SlowLog {
    entries: Mutex<Vec<SlowLogEntry>>,
    capacity: usize,
}

impl SlowLog {
    /// A log retaining the `capacity` slowest requests (capacity 0
    /// disables retention entirely).
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            entries: Mutex::new(Vec::with_capacity(capacity.min(64))),
            capacity,
        }
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers a completed request. Kept iff the log has a free slot or
    /// the entry is slower than the current fastest resident.
    pub fn record(&self, entry: SlowLogEntry) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock().expect("slow log poisoned");
        // keep sorted slowest-first so the eviction victim is last
        let at = entries.partition_point(|e| e.latency >= entry.latency);
        if at >= self.capacity {
            return; // faster than everything retained, and the log is full
        }
        entries.insert(at, entry);
        entries.truncate(self.capacity);
    }

    /// The retained entries, slowest first.
    pub fn snapshot(&self) -> Vec<SlowLogEntry> {
        self.entries.lock().expect("slow log poisoned").clone()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("slow log poisoned").len()
    }

    /// True iff nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(query: &str, micros: u64) -> SlowLogEntry {
        SlowLogEntry {
            trace_id: TraceId::next(),
            query: query.to_string(),
            backend: Backend::Product,
            latency: Duration::from_micros(micros),
            timed_out: false,
            stale: false,
            total_matches: 1,
            counters: Counters::default(),
        }
    }

    #[test]
    fn retains_the_worst_n_sorted_slowest_first() {
        let log = SlowLog::new(3);
        for (q, us) in [("a", 10), ("b", 500), ("c", 40), ("d", 200), ("e", 1)] {
            log.record(entry(q, us));
        }
        let kept: Vec<(String, u64)> = log
            .snapshot()
            .into_iter()
            .map(|e| (e.query, e.latency.as_micros() as u64))
            .collect();
        assert_eq!(
            kept,
            [
                ("b".to_string(), 500),
                ("d".to_string(), 200),
                ("c".to_string(), 40)
            ]
        );
    }

    #[test]
    fn fast_bursts_never_wash_out_a_slow_entry() {
        let log = SlowLog::new(2);
        log.record(entry("slow", 10_000));
        for _ in 0..100 {
            log.record(entry("fast", 5));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.snapshot()[0].query, "slow");
    }

    #[test]
    fn zero_capacity_disables() {
        let log = SlowLog::new(0);
        log.record(entry("a", 100));
        assert!(log.is_empty());
    }

    #[test]
    fn json_has_identity_and_profile() {
        let mut e = entry("down*[b]", 123);
        e.counters.set(twx_obs::Counter::TwaSteps, 9);
        let rendered = e.to_json().render();
        for key in ["trace_id", "query", "backend", "latency_us", "profile"] {
            assert!(rendered.contains(key), "missing {key}: {rendered}");
        }
        assert!(rendered.contains("twa_steps"));
        assert!(!rendered.contains("fo_eval_steps"), "zero counters omitted");
    }
}

//! Property-based tests for the bottom-up automata algebra: the boolean
//! operations must match membership semantics on random trees, for random
//! automata.

use proptest::prelude::*;
use twx_treeauto::reduce::trim;
use twx_treeauto::{Nfta, Rule};
use twx_xtree::generate::from_parent_vec;
use twx_xtree::{Label, Tree};

const LABELS: u32 = 2;

fn arb_nfta(max_states: u32, max_rules: usize) -> impl Strategy<Value = Nfta> {
    (1..=max_states).prop_flat_map(move |n| {
        let rule = (
            prop_oneof![Just(None), (0..n).prop_map(Some)],
            prop_oneof![Just(None), (0..n).prop_map(Some)],
            0..LABELS,
            0..n,
        )
            .prop_map(|(left, right, lab, state)| Rule {
                left,
                right,
                label: Label(lab),
                state,
            });
        let rules = proptest::collection::vec(rule, 1..=max_rules);
        let finals = proptest::collection::vec(0..n, 1..=(n as usize));
        (rules, finals).prop_map(move |(rules, mut finals)| {
            finals.sort_unstable();
            finals.dedup();
            Nfta {
                n_states: n,
                n_labels: LABELS,
                rules,
                finals,
            }
        })
    })
}

fn arb_tree(max_n: usize) -> impl Strategy<Value = Tree> {
    (1..=max_n).prop_flat_map(|n| {
        let parents = (1..n).map(|i| 0..i as u32).collect::<Vec<_>>().prop_map(|mut ps| {
            ps.insert(0, 0);
            ps
        });
        let labels = proptest::collection::vec(0..LABELS, n);
        (parents, labels).prop_map(|(ps, ls)| {
            let ls: Vec<Label> = ls.into_iter().map(Label).collect();
            from_parent_vec(&ps, &ls)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Union accepts iff either automaton accepts.
    #[test]
    fn union_semantics(a in arb_nfta(3, 10), b in arb_nfta(3, 10), t in arb_tree(6)) {
        let u = a.union(&b);
        prop_assert!(u.validate().is_ok());
        prop_assert_eq!(u.accepts(&t), a.accepts(&t) || b.accepts(&t));
    }

    /// Intersection accepts iff both do.
    #[test]
    fn intersection_semantics(a in arb_nfta(3, 10), b in arb_nfta(3, 10), t in arb_tree(6)) {
        let i = a.intersect(&b);
        prop_assert!(i.validate().is_ok());
        prop_assert_eq!(i.accepts(&t), a.accepts(&t) && b.accepts(&t));
    }

    /// Determinization preserves the language.
    #[test]
    fn determinize_semantics(a in arb_nfta(3, 8), t in arb_tree(6)) {
        let d = a.determinize();
        prop_assert_eq!(d.accepts(&t), a.accepts(&t));
    }

    /// Complement flips membership.
    #[test]
    fn complement_semantics(a in arb_nfta(3, 8), t in arb_tree(6)) {
        let c = a.complement();
        prop_assert_eq!(c.accepts(&t), !a.accepts(&t));
    }

    /// Trimming preserves the language and never grows the automaton.
    #[test]
    fn trim_semantics(a in arb_nfta(4, 12), t in arb_tree(6)) {
        let r = trim(&a);
        prop_assert!(r.n_states <= a.n_states);
        prop_assert!(r.validate().is_ok());
        prop_assert_eq!(r.accepts(&t), a.accepts(&t));
    }

    /// Emptiness with witness: a returned witness is accepted; `None`
    /// means no tree up to a modest bound is accepted.
    #[test]
    fn emptiness_witness_correct(a in arb_nfta(3, 10)) {
        match a.tree_emptiness_witness() {
            Some(w) => prop_assert!(a.accepts(&w), "witness rejected"),
            None => {
                for t in twx_xtree::generate::enumerate_trees_up_to(4, LABELS as usize) {
                    prop_assert!(!a.accepts(&t), "claimed empty but accepts {t:?}");
                }
            }
        }
    }

    /// Inclusion is consistent with pointwise membership.
    #[test]
    fn inclusion_sound(a in arb_nfta(2, 6), b in arb_nfta(2, 6), t in arb_tree(5)) {
        if a.included_in(&b) && a.accepts(&t) {
            prop_assert!(b.accepts(&t), "inclusion violated on {t:?}");
        }
    }
}

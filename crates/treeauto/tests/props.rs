//! Property-based tests for the bottom-up automata algebra: the boolean
//! operations must match membership semantics on random trees, for random
//! automata.
//!
//! Instances are drawn with the deterministic in-tree PRNG (no
//! `proptest`, offline build), so failures reproduce from the seed.

use twx_treeauto::reduce::trim;
use twx_treeauto::{Nfta, Rule};
use twx_xtree::generate::from_parent_vec;
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::{Label, Tree};

const LABELS: u32 = 2;

fn maybe_state(rng: &mut SplitMix64, n: u32) -> Option<u32> {
    if rng.gen_bool(0.5) {
        None
    } else {
        Some(rng.gen_range(0..n))
    }
}

fn rand_nfta(rng: &mut SplitMix64, max_states: u32, max_rules: usize) -> Nfta {
    let n = rng.gen_range(1..max_states + 1);
    let n_rules = rng.gen_range(1..max_rules + 1);
    let rules = (0..n_rules)
        .map(|_| Rule {
            left: maybe_state(rng, n),
            right: maybe_state(rng, n),
            label: Label(rng.gen_range(0..LABELS)),
            state: rng.gen_range(0..n),
        })
        .collect();
    let mut finals: Vec<u32> = (0..rng.gen_range(1..n as usize + 1))
        .map(|_| rng.gen_range(0..n))
        .collect();
    finals.sort_unstable();
    finals.dedup();
    Nfta {
        n_states: n,
        n_labels: LABELS,
        rules,
        finals,
    }
}

fn rand_tree(rng: &mut SplitMix64, max_n: usize) -> Tree {
    let n = rng.gen_range(1..max_n + 1);
    let mut parents = vec![0u32; n];
    for (i, p) in parents.iter_mut().enumerate().skip(1) {
        *p = rng.gen_range(0..i as u32);
    }
    let ls: Vec<Label> = (0..n).map(|_| Label(rng.gen_range(0..LABELS))).collect();
    from_parent_vec(&parents, &ls)
}

const ROUNDS: usize = 48;

/// Union accepts iff either automaton accepts.
#[test]
fn union_semantics() {
    let mut rng = SplitMix64::seed_from_u64(0x7a01);
    for _ in 0..ROUNDS {
        let a = rand_nfta(&mut rng, 3, 10);
        let b = rand_nfta(&mut rng, 3, 10);
        let t = rand_tree(&mut rng, 6);
        let u = a.union(&b);
        assert!(u.validate().is_ok());
        assert_eq!(u.accepts(&t), a.accepts(&t) || b.accepts(&t));
    }
}

/// Intersection accepts iff both do.
#[test]
fn intersection_semantics() {
    let mut rng = SplitMix64::seed_from_u64(0x7a02);
    for _ in 0..ROUNDS {
        let a = rand_nfta(&mut rng, 3, 10);
        let b = rand_nfta(&mut rng, 3, 10);
        let t = rand_tree(&mut rng, 6);
        let i = a.intersect(&b);
        assert!(i.validate().is_ok());
        assert_eq!(i.accepts(&t), a.accepts(&t) && b.accepts(&t));
    }
}

/// Determinization preserves the language.
#[test]
fn determinize_semantics() {
    let mut rng = SplitMix64::seed_from_u64(0x7a03);
    for _ in 0..ROUNDS {
        let a = rand_nfta(&mut rng, 3, 8);
        let t = rand_tree(&mut rng, 6);
        let d = a.determinize();
        assert_eq!(d.accepts(&t), a.accepts(&t));
    }
}

/// Complement flips membership.
#[test]
fn complement_semantics() {
    let mut rng = SplitMix64::seed_from_u64(0x7a04);
    for _ in 0..ROUNDS {
        let a = rand_nfta(&mut rng, 3, 8);
        let t = rand_tree(&mut rng, 6);
        let c = a.complement();
        assert_eq!(c.accepts(&t), !a.accepts(&t));
    }
}

/// Trimming preserves the language and never grows the automaton.
#[test]
fn trim_semantics() {
    let mut rng = SplitMix64::seed_from_u64(0x7a05);
    for _ in 0..ROUNDS {
        let a = rand_nfta(&mut rng, 4, 12);
        let t = rand_tree(&mut rng, 6);
        let r = trim(&a);
        assert!(r.n_states <= a.n_states);
        assert!(r.validate().is_ok());
        assert_eq!(r.accepts(&t), a.accepts(&t));
    }
}

/// Emptiness with witness: a returned witness is accepted; `None` means
/// no tree up to a modest bound is accepted.
#[test]
fn emptiness_witness_correct() {
    let mut rng = SplitMix64::seed_from_u64(0x7a06);
    for _ in 0..ROUNDS {
        let a = rand_nfta(&mut rng, 3, 10);
        match a.tree_emptiness_witness() {
            Some(w) => assert!(a.accepts(&w), "witness rejected"),
            None => {
                for t in twx_xtree::generate::enumerate_trees_up_to(4, LABELS as usize) {
                    assert!(!a.accepts(&t), "claimed empty but accepts {t:?}");
                }
            }
        }
    }
}

/// Inclusion is consistent with pointwise membership.
#[test]
fn inclusion_sound() {
    let mut rng = SplitMix64::seed_from_u64(0x7a07);
    for _ in 0..ROUNDS {
        let a = rand_nfta(&mut rng, 2, 6);
        let b = rand_nfta(&mut rng, 2, 6);
        let t = rand_tree(&mut rng, 5);
        if a.included_in(&b) && a.accepts(&t) {
            assert!(b.accepts(&t), "inclusion violated on {t:?}");
        }
    }
}

//! Example regular tree languages used by the experiments.
//!
//! These are the "hard side" of the paper's separation theorem
//! (FO(MTC) ⊊ MSO): regular languages of the boolean-circuit-evaluation
//! kind that power the known tree-walking lower-bound arguments
//! (Bojańczyk–Colcombet). All are trivially regular — each is a small
//! NFTA here — while their tree-walking definability is the delicate
//! question. Experiment E8 uses them as targets for bounded search.

use crate::nfta::{Nfta, Rule};
use twx_xtree::Label;

/// Alphabet for circuit trees: `and = 0`, `or = 1`, `one = 2`, `zero = 3`.
pub const CIRCUIT_LABELS: u32 = 4;

/// The language of **true boolean circuits**: trees whose internal nodes
/// are labelled `and`/`or`, leaves `one`/`zero`, and which evaluate to
/// true (AND over children, OR over children; a childless `and`/`or` node
/// counts as true/false respectively, matching the empty conjunction/
/// disjunction conventions).
///
/// This evaluation language is the core of the circuit-value arguments in
/// tree-walking lower bounds: a walking automaton must re-explore subtrees
/// to evaluate a circuit, while a bottom-up automaton does it in one pass.
pub fn true_circuits() -> Nfta {
    // Chain states carry (value of this node, all-true-so-far of the chain,
    // some-true-so-far of the chain), because the FCNS right spine is the
    // parent's child list:
    //   state = 4 flags packed: v ∈ {0,1}, conj ∈ {0,1}, disj ∈ {0,1}
    let pack = |v: bool, conj: bool, disj: bool| -> u32 {
        u32::from(v) | (u32::from(conj) << 1) | (u32::from(disj) << 2)
    };
    let mut rules = Vec::new();
    let states: Vec<(bool, bool, bool)> = (0..8)
        .map(|i| (i & 1 != 0, i & 2 != 0, i & 4 != 0))
        .collect();
    // leaves: one/zero with no children; chain info starts at this node
    for (lab, v) in [(2u32, true), (3u32, false)] {
        for right in
            std::iter::once(None).chain(states.iter().map(|&(rv, rc, rd)| Some((rv, rc, rd))))
        {
            let (conj, disj) = match right {
                None => (v, v),
                Some((_, rc, rd)) => (v && rc, v || rd),
            };
            rules.push(Rule {
                left: None,
                right: right.map(|(rv, rc, rd)| pack(rv, rc, rd)),
                label: Label(lab),
                state: pack(v, conj, disj),
            });
        }
    }
    // internal nodes: and/or over the child chain (= left child's chain)
    for (lab, is_and) in [(0u32, true), (1u32, false)] {
        for left in std::iter::once(None).chain(states.iter().copied().map(Some)) {
            let v = match left {
                None => is_and, // empty conjunction true, empty disjunction false
                Some((_, lc, ld)) => {
                    if is_and {
                        lc
                    } else {
                        ld
                    }
                }
            };
            for right in std::iter::once(None).chain(states.iter().copied().map(Some)) {
                let (conj, disj) = match right {
                    None => (v, v),
                    Some((_, rc, rd)) => (v && rc, v || rd),
                };
                rules.push(Rule {
                    left: left.map(|(lv, lc, ld)| pack(lv, lc, ld)),
                    right: right.map(|(rv, rc, rd)| pack(rv, rc, rd)),
                    label: Label(lab),
                    state: pack(v, conj, disj),
                });
            }
        }
    }
    let finals = (0..8).filter(|i| i & 1 != 0).collect();
    Nfta {
        n_states: 8,
        n_labels: CIRCUIT_LABELS,
        rules,
        finals,
    }
}

/// The language of trees with an **even number** of `a`-labelled nodes
/// (over a 2-letter alphabet `a = 0`, `b = 1`). Regular with two states.
/// Despite its counting flavour this language IS tree-walking
/// recognisable — `twx-twa::dfs::dfs_parity` exhibits the four-state DFS
/// walker — so it is *not* a separation witness; it serves as the control
/// language in experiment E8 (naive random search fails on it even though
/// a definition exists).
pub fn even_a() -> Nfta {
    // state = parity of a's in (this subtree + right chain subtrees)
    let mut rules = Vec::new();
    for lab in 0..2u32 {
        let here = u32::from(lab == 0);
        for left in [None, Some(0), Some(1)] {
            for right in [None, Some(0), Some(1)] {
                let parity = (here + left.unwrap_or(0) + right.unwrap_or(0)) % 2;
                rules.push(Rule {
                    left,
                    right,
                    label: Label(lab),
                    state: parity,
                });
            }
        }
    }
    Nfta {
        n_states: 2,
        n_labels: 2,
        rules,
        finals: vec![0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::parse::parse_sexp_with;
    use twx_xtree::{Alphabet, Tree};

    fn circuit(s: &str) -> Tree {
        let mut ab = Alphabet::from_names(["and", "or", "one", "zero"]);
        parse_sexp_with(s, &mut ab).unwrap()
    }

    #[test]
    fn circuit_evaluation() {
        let auto = true_circuits();
        assert!(auto.validate().is_ok());
        assert!(auto.accepts(&circuit("(one)")));
        assert!(!auto.accepts(&circuit("(zero)")));
        assert!(auto.accepts(&circuit("(and one one)")));
        assert!(!auto.accepts(&circuit("(and one zero)")));
        assert!(auto.accepts(&circuit("(or zero one)")));
        assert!(!auto.accepts(&circuit("(or zero zero)")));
        assert!(auto.accepts(&circuit("(and (or zero one) (and one one))")));
        assert!(!auto.accepts(&circuit("(and (or zero zero) one)")));
        // nesting depth 3
        assert!(auto.accepts(&circuit("(or (and (or zero one) one) zero)")));
        // empty gates
        assert!(auto.accepts(&circuit("(and)")));
        assert!(!auto.accepts(&circuit("(or)")));
    }

    #[test]
    fn even_a_counts() {
        let auto = even_a();
        let mut ab = Alphabet::from_names(["a", "b"]);
        let mut t = |s: &str| parse_sexp_with(s, &mut ab).unwrap();
        assert!(!auto.accepts(&t("(a)")));
        assert!(auto.accepts(&t("(b)")));
        assert!(auto.accepts(&t("(a a)")));
        assert!(!auto.accepts(&t("(a b)")));
        assert!(auto.accepts(&t("(b (a b) a)")));
        assert!(!auto.accepts(&t("(a (a b) a)")));
    }

    #[test]
    fn circuit_language_nonempty_with_witness() {
        let auto = true_circuits();
        let w = auto.tree_emptiness_witness().unwrap();
        assert!(auto.accepts(&w));
    }
}

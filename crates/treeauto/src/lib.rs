//! # twx-treeauto — bottom-up tree automata on FCNS binary encodings
//!
//! The regular-language (equivalently, MSO-definable) yardstick against
//! which the paper measures its three equivalent formalisms: by the
//! Thatcher–Wright theorem, a set of sibling-ordered trees is MSO-definable
//! iff the set of first-child/next-sibling encodings is accepted by a
//! bottom-up nondeterministic finite tree automaton (NFTA) on binary
//! trees. The paper's separation theorem states FO(MTC) ⊊ MSO, i.e. some
//! regular tree languages are not definable by any nested tree walking
//! automaton.
//!
//! Provided:
//!
//! * [`nfta`]: NFTAs over binary (FCNS) trees — membership, emptiness with
//!   a **minimal witness tree**, union, intersection (product), subset
//!   determinization, completion, complementation, and language-inclusion
//!   checking;
//! * [`marked`]: automata over marked alphabets `Σ × {0,1}` for unary
//!   (node-selecting) queries, with helpers to mark a tree at a node;
//! * [`xpath_compile`]: a **decision procedure** — the downward fragment of
//!   Core XPath (axes `↓`, `↓⁺`) compiles to a deterministic bottom-up
//!   automaton via subformula-type states, so satisfiability, validity and
//!   containment of that fragment are decided exactly (EXPTIME worst case,
//!   per the literature);
//! * [`examples`]: regular tree languages used in the experiments,
//!   including boolean-circuit evaluation languages of the kind used in
//!   TWA/branching separation arguments.

pub mod examples;
pub mod marked;
pub mod nfta;
pub mod reduce;
pub mod xpath_compile;

pub use nfta::{Nfta, Rule};

//! State-space reduction for bottom-up tree automata.
//!
//! Determinization (and the XPath type-automaton construction) produce
//! automata with unreachable and dead states. [`trim`] removes both:
//!
//! * a state is **reachable** if some binary tree evaluates to it;
//! * a state is **live** if some context takes it to acceptance at a tree
//!   root (computed by backwards closure over the rules, remembering that
//!   the root of an FCNS encoding has no right child).
//!
//! Trimming preserves the language exactly (checked by the tests on
//! bounded domains) and typically shrinks E6/E7 automata substantially.

use crate::nfta::{Nfta, Rule};

/// Removes unreachable and dead states, remapping the survivors densely.
pub fn trim(a: &Nfta) -> Nfta {
    let n = a.n_states as usize;
    // reachability (bottom-up)
    let mut reach = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for r in &a.rules {
            if reach[r.state as usize] {
                continue;
            }
            let lok = r.left.is_none_or(|q| reach[q as usize]);
            let rok = r.right.is_none_or(|q| reach[q as usize]);
            if lok && rok {
                reach[r.state as usize] = true;
                changed = true;
            }
        }
    }
    // liveness (top-down): finals reached via right-absent root rules are
    // live as roots; a state is live if it occurs in a rule whose result
    // is live and whose sibling slots are reachable.
    let mut live = vec![false; n];
    for r in &a.rules {
        if r.right.is_none()
            && a.finals.contains(&r.state)
            && r.left.is_none_or(|q| reach[q as usize])
        {
            live[r.state as usize] = true;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for r in &a.rules {
            if !live[r.state as usize] {
                continue;
            }
            let lok = r.left.is_none_or(|q| reach[q as usize]);
            let rok = r.right.is_none_or(|q| reach[q as usize]);
            if !(lok && rok) {
                continue;
            }
            for q in [r.left, r.right].into_iter().flatten() {
                if !live[q as usize] {
                    live[q as usize] = true;
                    changed = true;
                }
            }
        }
    }
    // keep states that are both reachable and live
    let keep: Vec<bool> = (0..n).map(|q| reach[q] && live[q]).collect();
    let mut remap = vec![u32::MAX; n];
    let mut next = 0u32;
    for q in 0..n {
        if keep[q] {
            remap[q] = next;
            next += 1;
        }
    }
    let rules: Vec<Rule> = a
        .rules
        .iter()
        .filter(|r| {
            keep[r.state as usize]
                && r.left.is_none_or(|q| keep[q as usize])
                && r.right.is_none_or(|q| keep[q as usize])
        })
        .map(|r| Rule {
            left: r.left.map(|q| remap[q as usize]),
            right: r.right.map(|q| remap[q as usize]),
            label: r.label,
            state: remap[r.state as usize],
        })
        .collect();
    let finals: Vec<u32> = a
        .finals
        .iter()
        .filter(|&&q| keep[q as usize])
        .map(|&q| remap[q as usize])
        .collect();
    Nfta {
        n_states: next,
        n_labels: a.n_labels,
        rules,
        finals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath_compile::{compile_node_expr, AcceptAt};
    use twx_corexpath::parser::parse_node_expr;
    use twx_xtree::generate::enumerate_trees_up_to;
    use twx_xtree::{Alphabet, Label};

    #[test]
    fn trim_preserves_language() {
        let mut ab = Alphabet::from_names(["p0", "p1"]);
        let formulas = ["<down[p1]>", "<down+[p0 and <down[p1]>]>", "p0 and !p0"];
        for fs in formulas {
            let f = parse_node_expr(fs, &mut ab).unwrap();
            let auto = compile_node_expr(&f, 2, AcceptAt::SomeNode).unwrap();
            let trimmed = trim(&auto);
            assert!(trimmed.validate().is_ok());
            assert!(trimmed.n_states <= auto.n_states);
            for t in enumerate_trees_up_to(5, 2) {
                assert_eq!(auto.accepts(&t), trimmed.accepts(&t), "{fs} on {t:?}");
            }
        }
    }

    #[test]
    fn trim_shrinks_padded_automata() {
        // pad an automaton with garbage states
        let mut auto = Nfta::root_label(2, Label(0));
        auto.n_states += 5; // unreachable states
        auto.rules.push(Rule {
            left: Some(6),
            right: None,
            label: Label(0),
            state: 5,
        }); // dead chain
        let trimmed = trim(&auto);
        assert_eq!(trimmed.n_states, 2);
        for t in enumerate_trees_up_to(4, 2) {
            assert_eq!(auto.accepts(&t), trimmed.accepts(&t));
        }
    }

    #[test]
    fn empty_language_trims_to_nothing() {
        let trimmed = trim(&Nfta::empty_language(2));
        assert_eq!(trimmed.n_states, 0);
        assert!(trimmed.is_empty());
    }

    #[test]
    fn trim_after_determinize() {
        let mut ab = Alphabet::from_names(["p0", "p1"]);
        let f = parse_node_expr("<down[p0]> or <down[p1]>", &mut ab).unwrap();
        let auto = compile_node_expr(&f, 2, AcceptAt::Root).unwrap();
        let det = auto.determinize();
        let trimmed = trim(&det);
        assert!(trimmed.n_states <= det.n_states);
        for t in enumerate_trees_up_to(4, 2) {
            assert_eq!(det.accepts(&t), trimmed.accepts(&t));
        }
    }
}

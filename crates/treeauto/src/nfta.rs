//! Bottom-up nondeterministic finite tree automata on binary (FCNS) trees.
//!
//! A rule `(l, r, a) → q` fires at a node labelled `a` whose left subtree
//! evaluated to `l` and right subtree to `r`, where `None` matches an
//! *absent* child. A binary tree is accepted when the root can evaluate to
//! a final state; an unranked tree is accepted when its FCNS encoding is
//! (its root always has an absent right child).

use std::collections::HashMap;
use twx_xtree::fcns::BinTree;
use twx_xtree::{Label, Tree, TreeBuilder};

/// A transition rule `(left, right, label) → state`; `None` matches an
/// absent child.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rule {
    /// State of the left (first-child) subtree, `None` if absent.
    pub left: Option<u32>,
    /// State of the right (next-sibling) subtree, `None` if absent.
    pub right: Option<u32>,
    /// The node label.
    pub label: Label,
    /// The resulting state.
    pub state: u32,
}

/// A bottom-up nondeterministic finite tree automaton.
///
/// ```
/// use twx_treeauto::Nfta;
/// use twx_xtree::parse::parse_sexp;
///
/// let universal = Nfta::universal(2);
/// let doc = parse_sexp("(a0 a1 a0)").unwrap();
/// assert!(universal.accepts(&doc.tree));
/// assert!(Nfta::empty_language(2).is_empty());
/// assert!(!universal.complement().accepts(&doc.tree));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Nfta {
    /// Number of states.
    pub n_states: u32,
    /// Number of labels in the alphabet (labels are `0..n_labels`).
    pub n_labels: u32,
    /// The rules.
    pub rules: Vec<Rule>,
    /// Final (accepting-at-root) states.
    pub finals: Vec<u32>,
}

impl Nfta {
    /// Checks indices are in range.
    pub fn validate(&self) -> Result<(), String> {
        for &q in &self.finals {
            if q >= self.n_states {
                return Err(format!("final state {q} out of range"));
            }
        }
        for (i, r) in self.rules.iter().enumerate() {
            if r.state >= self.n_states
                || r.left.is_some_and(|l| l >= self.n_states)
                || r.right.is_some_and(|x| x >= self.n_states)
            {
                return Err(format!("rule {i} has out-of-range state"));
            }
            if r.label.0 >= self.n_labels {
                return Err(format!("rule {i} has out-of-range label"));
            }
        }
        Ok(())
    }

    /// The set of states each node of `bt` can evaluate to (bottom-up run).
    pub fn run(&self, bt: &BinTree) -> Vec<Vec<u32>> {
        let mut states: Vec<Vec<u32>> = vec![Vec::new(); bt.len()];
        // index rules by label for speed
        let mut by_label: Vec<Vec<&Rule>> = vec![Vec::new(); self.n_labels as usize];
        for r in &self.rules {
            by_label[r.label.index()].push(r);
        }
        for v in bt.postorder() {
            let l = bt.left(v);
            let r = bt.right(v);
            let mut here = Vec::new();
            let lbl = bt.label(v);
            if lbl.0 >= self.n_labels {
                continue; // label outside alphabet: no rule fires
            }
            for rule in &by_label[lbl.index()] {
                let left_ok = match (rule.left, l) {
                    (None, None) => true,
                    (Some(q), Some(c)) => states[c.index()].contains(&q),
                    _ => false,
                };
                if !left_ok {
                    continue;
                }
                let right_ok = match (rule.right, r) {
                    (None, None) => true,
                    (Some(q), Some(c)) => states[c.index()].contains(&q),
                    _ => false,
                };
                if right_ok && !here.contains(&rule.state) {
                    here.push(rule.state);
                }
            }
            states[v.index()] = here;
        }
        states
    }

    /// Whether the automaton accepts the binary tree.
    pub fn accepts_bin(&self, bt: &BinTree) -> bool {
        let states = self.run(bt);
        states[bt.root().index()]
            .iter()
            .any(|q| self.finals.contains(q))
    }

    /// Whether the automaton accepts the FCNS encoding of an unranked tree.
    pub fn accepts(&self, t: &Tree) -> bool {
        self.accepts_bin(&BinTree::encode(t))
    }

    /// The set of states reachable by *some* binary tree, with, for each, a
    /// witness rule chain for reconstruction.
    fn reachable(&self) -> (Vec<bool>, Vec<Option<usize>>) {
        let mut reach = vec![false; self.n_states as usize];
        // witness[q] = index of a rule deriving q from reachable children
        let mut witness: Vec<Option<usize>> = vec![None; self.n_states as usize];
        let mut changed = true;
        while changed {
            changed = false;
            for (i, r) in self.rules.iter().enumerate() {
                if reach[r.state as usize] {
                    continue;
                }
                let lok = r.left.is_none_or(|q| reach[q as usize]);
                let rok = r.right.is_none_or(|q| reach[q as usize]);
                if lok && rok {
                    reach[r.state as usize] = true;
                    witness[r.state as usize] = Some(i);
                    changed = true;
                }
            }
        }
        (reach, witness)
    }

    /// Emptiness over **unranked trees**: is there a tree whose FCNS
    /// encoding is accepted? Returns a witness tree if nonempty.
    ///
    /// The root of an encoding has an absent right child, so the final
    /// state must be derivable by a rule with `right: None`.
    pub fn tree_emptiness_witness(&self) -> Option<Tree> {
        let (reach, witness) = self.reachable();
        for r in &self.rules {
            if r.right.is_none()
                && self.finals.contains(&r.state)
                && r.left.is_none_or(|q| reach[q as usize])
            {
                // reconstruct: this rule derives the root
                let mut b = TreeBuilder::new();
                self.build_witness_node(r, &witness, &mut b);
                return Some(b.finish());
            }
        }
        None
    }

    /// Whether the unranked-tree language is empty.
    pub fn is_empty(&self) -> bool {
        self.tree_emptiness_witness().is_none()
    }

    /// Emits the unranked-tree node corresponding to a derivation of
    /// `rule`, then its following siblings from the right chain.
    fn build_witness_node(&self, rule: &Rule, witness: &[Option<usize>], b: &mut TreeBuilder) {
        b.open(rule.label);
        if let Some(lq) = rule.left {
            let lr = witness[lq as usize].expect("reachable state lacks witness");
            self.build_witness_chain(&self.rules[lr], witness, b);
        }
        b.close();
    }

    /// Emits a node and then continues along the right (sibling) chain.
    fn build_witness_chain(&self, rule: &Rule, witness: &[Option<usize>], b: &mut TreeBuilder) {
        b.open(rule.label);
        if let Some(lq) = rule.left {
            let lr = witness[lq as usize].expect("reachable state lacks witness");
            self.build_witness_chain(&self.rules[lr], witness, b);
        }
        b.close();
        if let Some(rq) = rule.right {
            let rr = witness[rq as usize].expect("reachable state lacks witness");
            self.build_witness_chain(&self.rules[rr], witness, b);
        }
    }

    /// Language union (disjoint sum of state spaces).
    pub fn union(&self, other: &Nfta) -> Nfta {
        assert_eq!(self.n_labels, other.n_labels);
        let off = self.n_states;
        let mut rules = self.rules.clone();
        rules.extend(other.rules.iter().map(|r| Rule {
            left: r.left.map(|q| q + off),
            right: r.right.map(|q| q + off),
            label: r.label,
            state: r.state + off,
        }));
        let mut finals = self.finals.clone();
        finals.extend(other.finals.iter().map(|&q| q + off));
        Nfta {
            n_states: self.n_states + other.n_states,
            n_labels: self.n_labels,
            rules,
            finals,
        }
    }

    /// Language intersection (product construction).
    pub fn intersect(&self, other: &Nfta) -> Nfta {
        assert_eq!(self.n_labels, other.n_labels);
        let pair = |a: u32, b: u32| a * other.n_states + b;
        let mut rules = Vec::new();
        for r1 in &self.rules {
            for r2 in &other.rules {
                if r1.label != r2.label {
                    continue;
                }
                let left = match (r1.left, r2.left) {
                    (None, None) => None,
                    (Some(a), Some(b)) => Some(pair(a, b)),
                    _ => continue,
                };
                let right = match (r1.right, r2.right) {
                    (None, None) => None,
                    (Some(a), Some(b)) => Some(pair(a, b)),
                    _ => continue,
                };
                rules.push(Rule {
                    left,
                    right,
                    label: r1.label,
                    state: pair(r1.state, r2.state),
                });
            }
        }
        let mut finals = Vec::new();
        for &f1 in &self.finals {
            for &f2 in &other.finals {
                finals.push(pair(f1, f2));
            }
        }
        Nfta {
            n_states: self.n_states * other.n_states,
            n_labels: self.n_labels,
            rules,
            finals,
        }
    }

    /// Subset-construction determinization, producing a **complete**
    /// deterministic automaton (the empty subset is materialised as a sink,
    /// so complementation is a finals flip).
    pub fn determinize(&self) -> Nfta {
        let mut sets: Vec<Vec<u32>> = Vec::new();
        let mut index: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut rules: Vec<Rule> = Vec::new();
        let mut intern = |s: Vec<u32>, sets: &mut Vec<Vec<u32>>| -> (u32, bool) {
            if let Some(&i) = index.get(&s) {
                return (i, false);
            }
            let i = sets.len() as u32;
            index.insert(s.clone(), i);
            sets.push(s);
            (i, true)
        };

        // successor set for a (left?, right?, label) combination
        let target = |l: Option<&[u32]>, r: Option<&[u32]>, label: Label, rules_src: &[Rule]| {
            let mut out: Vec<u32> = Vec::new();
            for rule in rules_src {
                if rule.label != label {
                    continue;
                }
                let lok = match (rule.left, l) {
                    (None, None) => true,
                    (Some(q), Some(s)) => s.contains(&q),
                    _ => false,
                };
                let rok = match (rule.right, r) {
                    (None, None) => true,
                    (Some(q), Some(s)) => s.contains(&q),
                    _ => false,
                };
                if lok && rok && !out.contains(&rule.state) {
                    out.push(rule.state);
                }
            }
            out.sort_unstable();
            out
        };

        // fixpoint: combine all discovered sets (and ⊥) under all labels
        let mut frontier = true;
        while frontier {
            frontier = false;
            let snapshot = sets.clone();
            let mut options: Vec<Option<usize>> = vec![None];
            options.extend((0..snapshot.len()).map(Some));
            for &lo in &options {
                for &ro in &options {
                    for lab in 0..self.n_labels {
                        let l = lo.map(|i| snapshot[i].as_slice());
                        let r = ro.map(|i| snapshot[i].as_slice());
                        let tgt = target(l, r, Label(lab), &self.rules);
                        let (ti, new) = intern(tgt, &mut sets);
                        if new {
                            frontier = true;
                        }
                        let rule = Rule {
                            left: lo.map(|i| i as u32),
                            right: ro.map(|i| i as u32),
                            label: Label(lab),
                            state: ti,
                        };
                        if !rules.contains(&rule) {
                            rules.push(rule);
                        }
                    }
                }
            }
        }
        let finals = sets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.iter().any(|q| self.finals.contains(q)))
            .map(|(i, _)| i as u32)
            .collect();
        Nfta {
            n_states: sets.len() as u32,
            n_labels: self.n_labels,
            rules,
            finals,
        }
    }

    /// Language complement over unranked trees (determinize + flip finals).
    pub fn complement(&self) -> Nfta {
        let mut d = self.determinize();
        let old: Vec<u32> = d.finals.clone();
        d.finals = (0..d.n_states).filter(|q| !old.contains(q)).collect();
        d
    }

    /// Language inclusion `L(self) ⊆ L(other)` over unranked trees.
    pub fn included_in(&self, other: &Nfta) -> bool {
        self.intersect(&other.complement()).is_empty()
    }

    /// Language equivalence over unranked trees.
    pub fn equivalent(&self, other: &Nfta) -> bool {
        self.included_in(other) && other.included_in(self)
    }

    /// The automaton accepting **all** trees over the alphabet.
    pub fn universal(n_labels: u32) -> Nfta {
        let mut rules = Vec::new();
        for lab in 0..n_labels {
            for left in [None, Some(0)] {
                for right in [None, Some(0)] {
                    rules.push(Rule {
                        left,
                        right,
                        label: Label(lab),
                        state: 0,
                    });
                }
            }
        }
        Nfta {
            n_states: 1,
            n_labels,
            rules,
            finals: vec![0],
        }
    }

    /// The automaton accepting **no** tree.
    pub fn empty_language(n_labels: u32) -> Nfta {
        Nfta {
            n_states: 1,
            n_labels,
            rules: Vec::new(),
            finals: vec![0],
        }
    }

    /// The automaton accepting trees whose root is labelled `l`.
    pub fn root_label(n_labels: u32, l: Label) -> Nfta {
        // state 0 = anything, state 1 = root labelled l
        let mut rules = Vec::new();
        for lab in 0..n_labels {
            for left in [None, Some(0)] {
                for right in [None, Some(0)] {
                    rules.push(Rule {
                        left,
                        right,
                        label: Label(lab),
                        state: 0,
                    });
                }
            }
        }
        for left in [None, Some(0)] {
            rules.push(Rule {
                left,
                right: None,
                label: l,
                state: 1,
            });
        }
        Nfta {
            n_states: 2,
            n_labels,
            rules,
            finals: vec![1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::generate::enumerate_trees_up_to;
    use twx_xtree::parse::parse_sexp;
    use twx_xtree::Alphabet;

    fn tree(s: &str) -> Tree {
        // use a shared alphabet convention: a=0, b=1
        let mut ab = Alphabet::from_names(["a", "b"]);
        twx_xtree::parse::parse_sexp_with(s, &mut ab).unwrap()
    }

    /// Language: "some node is labelled b" over Σ = {a, b}.
    fn some_b() -> Nfta {
        // state 0 = no b seen, state 1 = b seen somewhere
        let mut rules = Vec::new();
        for (lab, self_has) in [(0u32, false), (1u32, true)] {
            for left in [None, Some(0), Some(1)] {
                for right in [None, Some(0), Some(1)] {
                    let has = self_has || left == Some(1) || right == Some(1);
                    rules.push(Rule {
                        left,
                        right,
                        label: Label(lab),
                        state: u32::from(has),
                    });
                }
            }
        }
        Nfta {
            n_states: 2,
            n_labels: 2,
            rules,
            finals: vec![1],
        }
    }

    #[test]
    fn membership() {
        let a = some_b();
        assert!(a.validate().is_ok());
        assert!(!a.accepts(&tree("(a (a a) a)")));
        assert!(a.accepts(&tree("(a (a b) a)")));
        assert!(a.accepts(&tree("(b)")));
        assert!(a.accepts(&tree("(a a b)")));
    }

    #[test]
    fn emptiness_and_witness() {
        let a = some_b();
        let w = a.tree_emptiness_witness().expect("nonempty");
        assert!(a.accepts(&w), "witness not accepted");
        assert!(!a.is_empty());
        assert!(Nfta::empty_language(2).is_empty());
        assert!(!Nfta::universal(2).is_empty());
        let u = Nfta::universal(2);
        let w = u.tree_emptiness_witness().unwrap();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn union_intersection() {
        let a = some_b();
        let root_a = Nfta::root_label(2, Label(0));
        assert!(root_a.accepts(&tree("(a b)")));
        assert!(!root_a.accepts(&tree("(b a)")));
        let both = a.intersect(&root_a);
        assert!(both.accepts(&tree("(a b)")));
        assert!(!both.accepts(&tree("(b a)"))); // has b but root not a
        assert!(!both.accepts(&tree("(a a)"))); // root a but no b
        let either = a.union(&root_a);
        assert!(either.accepts(&tree("(b a)")));
        assert!(either.accepts(&tree("(a a)")));
        assert!(either.accepts(&tree("(b)")));
    }

    #[test]
    fn determinize_preserves_language() {
        let a = some_b();
        let d = a.determinize();
        assert!(d.validate().is_ok());
        for t in enumerate_trees_up_to(4, 2) {
            assert_eq!(a.accepts(&t), d.accepts(&t), "{t:?}");
        }
    }

    #[test]
    fn complement_on_bounded_domain() {
        let a = some_b();
        let c = a.complement();
        for t in enumerate_trees_up_to(4, 2) {
            assert_eq!(a.accepts(&t), !c.accepts(&t), "{t:?}");
        }
        // complement of "some b" = "all a": nonempty
        assert!(!c.is_empty());
        let w = c.tree_emptiness_witness().unwrap();
        assert!(w.nodes().all(|v| w.label(v) == Label(0)));
    }

    #[test]
    fn inclusion_and_equivalence() {
        let a = some_b();
        let root_a = Nfta::root_label(2, Label(0));
        let both = a.intersect(&root_a);
        assert!(both.included_in(&a));
        assert!(both.included_in(&root_a));
        assert!(!a.included_in(&root_a));
        assert!(a.equivalent(&a.determinize()));
        assert!(!a.equivalent(&root_a));
        assert!(Nfta::empty_language(2).included_in(&a));
        assert!(a.included_in(&Nfta::universal(2)));
    }

    #[test]
    fn labels_outside_alphabet_reject() {
        let a = some_b();
        let mut ab = Alphabet::from_names(["a", "b", "c"]);
        let t = twx_xtree::parse::parse_sexp_with("(c)", &mut ab).unwrap();
        assert!(!a.accepts(&t));
    }

    #[test]
    fn parse_helper_sanity() {
        let doc = parse_sexp("(a b)").unwrap();
        assert_eq!(doc.tree.len(), 2);
    }
}

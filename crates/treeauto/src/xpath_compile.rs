//! An exact decision procedure for the **downward fragment** of Core XPath.
//!
//! Node expressions over the axes `↓`, `↓⁺` only are *subtree-local*: their
//! truth at `v` depends only on the subtree of `v`. They therefore compile
//! to a deterministic bottom-up automaton on FCNS encodings whose states
//! are *types* — triples `(T, C, S)` of subformula sets recording what
//! holds at the current node (`T`), at some node of its right-sibling
//! chain (`C`), and at some descendant-or-self of a chain node (`S`).
//!
//! This yields exact satisfiability, validity, and containment checking
//! for the fragment (EXPTIME in the worst case, per the complexity
//! classification), with a **minimal witness tree** on the satisfiable
//! side — the machinery a query optimizer needs to certify rewrite rules
//! of the downward fragment, and the substrate for experiment E6.
//!
//! Path expressions are first normalised to *simple node expressions*
//! (label tests, booleans, `∃child ψ`, `∃descendant ψ`) using the valid
//! equivalences `⟨A/B⟩ = ⟨A[⟨B⟩]⟩`, `⟨A ∪ B⟩ = ⟨A⟩ ∨ ⟨B⟩` — the normal
//! form that also drives the completeness proofs in the literature.

use crate::nfta::{Nfta, Rule};
use std::collections::HashMap;
use twx_corexpath::ast::{Axis, NodeExpr, PathExpr, Step};
use twx_xtree::Label;

/// Simple node expressions: the modal normal form of the downward
/// fragment.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Simple {
    /// `⊤`.
    True,
    /// A label test.
    Label(Label),
    /// `∃child. ψ` (XPath `⟨↓[ψ]⟩`).
    SomeChild(Box<Simple>),
    /// `∃ strict descendant. ψ` (XPath `⟨↓⁺[ψ]⟩`).
    SomeDesc(Box<Simple>),
    /// `¬ψ`.
    Not(Box<Simple>),
    /// `ψ ∧ χ`.
    And(Box<Simple>, Box<Simple>),
    /// `ψ ∨ χ`.
    Or(Box<Simple>, Box<Simple>),
}

/// Error raised when an expression leaves the downward fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotDownward;

impl std::fmt::Display for NotDownward {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expression uses a non-downward axis")
    }
}

impl std::error::Error for NotDownward {}

/// Rewrites a Core XPath node expression of the downward fragment into
/// simple (modal normal) form.
pub fn to_simple(f: &NodeExpr) -> Result<Simple, NotDownward> {
    match f {
        NodeExpr::True => Ok(Simple::True),
        NodeExpr::Label(l) => Ok(Simple::Label(*l)),
        NodeExpr::Some(a) => diamond(a, Simple::True),
        NodeExpr::Not(g) => Ok(Simple::Not(Box::new(to_simple(g)?))),
        NodeExpr::And(g, h) => Ok(Simple::And(
            Box::new(to_simple(g)?),
            Box::new(to_simple(h)?),
        )),
        NodeExpr::Or(g, h) => Ok(Simple::Or(Box::new(to_simple(g)?), Box::new(to_simple(h)?))),
    }
}

/// `diamond(A, φ) = ⟨A[φ]⟩` in simple form.
fn diamond(a: &PathExpr, phi: Simple) -> Result<Simple, NotDownward> {
    match a {
        PathExpr::Step(Step {
            axis: Axis::Down,
            closure: false,
        }) => Ok(Simple::SomeChild(Box::new(phi))),
        PathExpr::Step(Step {
            axis: Axis::Down,
            closure: true,
        }) => Ok(Simple::SomeDesc(Box::new(phi))),
        PathExpr::Step(_) => Err(NotDownward),
        PathExpr::Slf => Ok(phi),
        PathExpr::Seq(x, y) => {
            let inner = diamond(y, phi)?;
            diamond(x, inner)
        }
        PathExpr::Union(x, y) => Ok(Simple::Or(
            Box::new(diamond(x, phi.clone())?),
            Box::new(diamond(y, phi)?),
        )),
        PathExpr::Filter(x, psi) => {
            let guard = to_simple(psi)?;
            diamond(x, Simple::And(Box::new(guard), Box::new(phi)))
        }
    }
}

/// Collects the subformula closure in evaluation order (subformulas before
/// superformulas).
fn closure(f: &Simple, out: &mut Vec<Simple>) {
    match f {
        Simple::True | Simple::Label(_) => {}
        Simple::SomeChild(g) | Simple::SomeDesc(g) | Simple::Not(g) => closure(g, out),
        Simple::And(g, h) | Simple::Or(g, h) => {
            closure(g, out);
            closure(h, out);
        }
    }
    if !out.contains(f) {
        out.push(f.clone());
    }
}

/// Whether acceptance is at the root or at some node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AcceptAt {
    /// The formula must hold at the root.
    Root,
    /// The formula must hold at some node of the tree.
    SomeNode,
}

/// Compiles a simple node expression to a deterministic bottom-up
/// automaton over `n_labels` labels. The automaton accepts exactly the
/// trees in which the formula holds at the root ([`AcceptAt::Root`]) or at
/// some node ([`AcceptAt::SomeNode`]).
pub fn compile_simple(f: &Simple, n_labels: u32, accept: AcceptAt) -> Nfta {
    let mut cl = Vec::new();
    closure(f, &mut cl);
    let k = cl.len();
    let idx: HashMap<&Simple, usize> = cl.iter().enumerate().map(|(i, g)| (g, i)).collect();

    // a type: (T, C, S) each a bitvector over the closure
    type TypeKey = (Vec<bool>, Vec<bool>, Vec<bool>);
    let mut types: Vec<TypeKey> = Vec::new();
    let mut intern: HashMap<TypeKey, u32> = HashMap::new();
    let mut rules: Vec<Rule> = Vec::new();
    let mut rule_seen: HashMap<(Option<u32>, Option<u32>, u32), u32> = HashMap::new();

    // compute the type of a node from label + child/sibling types
    let step = |lab: Label, left: Option<&TypeKey>, right: Option<&TypeKey>| -> TypeKey {
        let mut t = vec![false; k];
        for (i, g) in cl.iter().enumerate() {
            t[i] = match g {
                Simple::True => true,
                Simple::Label(l) => *l == lab,
                Simple::SomeChild(h) => left.is_some_and(|(_, c, _)| c[idx[&**h]]),
                Simple::SomeDesc(h) => left.is_some_and(|(_, _, s)| s[idx[&**h]]),
                Simple::Not(h) => !t[idx[&**h]],
                Simple::And(g1, g2) => t[idx[&**g1]] && t[idx[&**g2]],
                Simple::Or(g1, g2) => t[idx[&**g1]] || t[idx[&**g2]],
            };
        }
        let mut c = t.clone();
        if let Some((_, cr, _)) = right {
            for i in 0..k {
                c[i] = c[i] || cr[i];
            }
        }
        let mut s = t.clone();
        if let Some((_, _, sl)) = left {
            for i in 0..k {
                s[i] = s[i] || sl[i];
            }
        }
        if let Some((_, _, sr)) = right {
            for i in 0..k {
                s[i] = s[i] || sr[i];
            }
        }
        (t, c, s)
    };

    // lazy fixpoint over reachable types
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot_len = types.len();
        let mut options: Vec<Option<u32>> = vec![None];
        options.extend((0..snapshot_len as u32).map(Some));
        for &lo in &options {
            for &ro in &options {
                for lab in 0..n_labels {
                    if rule_seen.contains_key(&(lo, ro, lab)) {
                        continue;
                    }
                    let lt = lo.map(|i| types[i as usize].clone());
                    let rt = ro.map(|i| types[i as usize].clone());
                    let ty = step(Label(lab), lt.as_ref(), rt.as_ref());
                    let ti = match intern.get(&ty) {
                        Some(&i) => i,
                        None => {
                            let i = types.len() as u32;
                            intern.insert(ty.clone(), i);
                            types.push(ty);
                            changed = true;
                            i
                        }
                    };
                    rule_seen.insert((lo, ro, lab), ti);
                    rules.push(Rule {
                        left: lo,
                        right: ro,
                        label: Label(lab),
                        state: ti,
                    });
                }
            }
        }
    }

    let fi = idx[f];
    let finals = types
        .iter()
        .enumerate()
        .filter(|(_, (t, _, s))| match accept {
            AcceptAt::Root => t[fi],
            AcceptAt::SomeNode => s[fi],
        })
        .map(|(i, _)| i as u32)
        .collect();
    Nfta {
        n_states: types.len() as u32,
        n_labels,
        rules,
        finals,
    }
}

/// Compiles a downward-fragment Core XPath node expression directly.
pub fn compile_node_expr(
    f: &NodeExpr,
    n_labels: u32,
    accept: AcceptAt,
) -> Result<Nfta, NotDownward> {
    Ok(compile_simple(&to_simple(f)?, n_labels, accept))
}

/// Exact satisfiability for the downward fragment: is there a tree (over
/// `n_labels` labels) with a node satisfying `f`? Returns a witness tree.
pub fn satisfiable(f: &NodeExpr, n_labels: u32) -> Result<Option<twx_xtree::Tree>, NotDownward> {
    let auto = compile_node_expr(f, n_labels, AcceptAt::SomeNode)?;
    Ok(auto.tree_emptiness_witness())
}

/// Exact containment for the downward fragment: does `f ⊨ g` hold at every
/// node of every tree over `n_labels` labels?
pub fn contains(f: &NodeExpr, g: &NodeExpr, n_labels: u32) -> Result<bool, NotDownward> {
    let counterexample = f.clone().and(g.clone().not());
    Ok(satisfiable(&counterexample, n_labels)?.is_none())
}

/// Exact equivalence for the downward fragment.
pub fn equivalent(f: &NodeExpr, g: &NodeExpr, n_labels: u32) -> Result<bool, NotDownward> {
    Ok(contains(f, g, n_labels)? && contains(g, f, n_labels)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_corexpath::eval::eval_node;
    use twx_corexpath::parser::parse_node_expr;
    use twx_xtree::generate::enumerate_trees_up_to;
    use twx_xtree::Alphabet;

    fn expr(s: &str) -> NodeExpr {
        let mut ab = Alphabet::from_names(["a0", "a1"]);
        parse_node_expr(s, &mut ab).unwrap()
    }

    #[test]
    fn simple_normal_form() {
        // ⟨down/down⟩ = ∃child ∃child ⊤
        let s = to_simple(&expr("<down/down>")).unwrap();
        assert_eq!(
            s,
            Simple::SomeChild(Box::new(Simple::SomeChild(Box::new(Simple::True))))
        );
        // ⟨down | down+⟩ = ∃child ⊤ ∨ ∃desc ⊤
        let s = to_simple(&expr("<down | down+>")).unwrap();
        assert!(matches!(s, Simple::Or(_, _)));
        // upward axes rejected
        assert_eq!(to_simple(&expr("<up>")), Err(NotDownward));
        assert_eq!(to_simple(&expr("<down[<right>]>")), Err(NotDownward));
    }

    /// The compiled automaton agrees with the evaluator on every tree with
    /// ≤ 5 nodes — the compilation correctness theorem, checked.
    #[test]
    fn automaton_matches_evaluator() {
        let formulas = [
            "a0",
            "<down[a1]>",
            "<down+[a0 and leaf]>",
            "!<down> and a1",
            "<down/down[a0]> or !a1",
            "<down+[<down[a1]>]>",
            "<(down | down/down)[a0]>",
        ];
        let trees = enumerate_trees_up_to(5, 2);
        for fs in formulas {
            let f = expr(fs);
            let root_auto = compile_node_expr(&f, 2, AcceptAt::Root).unwrap();
            let some_auto = compile_node_expr(&f, 2, AcceptAt::SomeNode).unwrap();
            for t in &trees {
                let sem = eval_node(t, &f);
                assert_eq!(
                    root_auto.accepts(t),
                    sem.contains(t.root()),
                    "root acceptance mismatch for {fs} on {t:?}"
                );
                assert_eq!(
                    some_auto.accepts(t),
                    !sem.is_empty(),
                    "some-node acceptance mismatch for {fs} on {t:?}"
                );
            }
        }
    }

    #[test]
    fn satisfiability_decisions() {
        // satisfiable with witness
        let w = satisfiable(&expr("<down[a1]>"), 2).unwrap().unwrap();
        let sem = eval_node(&w, &expr("<down[a1]>"));
        assert!(!sem.is_empty(), "witness does not satisfy the formula");
        // unsatisfiable: a0 and not a0
        assert!(satisfiable(&expr("a0 and !a0"), 2).unwrap().is_none());
        // unsatisfiable: leaf with a child
        assert!(satisfiable(&expr("leaf and <down>"), 2).unwrap().is_none());
        // a node that is all labels at once is unsatisfiable under unique
        // labelling... but our trees have one label per node by
        // construction, so a0 ∧ a1 is unsatisfiable:
        assert!(satisfiable(&expr("a0 and a1"), 2).unwrap().is_none());
    }

    #[test]
    fn containment_decisions() {
        // ⟨↓[a1]⟩ ⊨ ⟨↓⟩
        assert!(contains(&expr("<down[a1]>"), &expr("<down>"), 2).unwrap());
        // ⟨↓⟩ ⊭ ⟨↓[a1]⟩
        assert!(!contains(&expr("<down>"), &expr("<down[a1]>"), 2).unwrap());
        // the quiz: ⟨↓/↓⁺⟩ ≡ ⟨↓⁺/↓⟩ ≡ ⟨↓⁺/↓⁺⟩ as node expressions (all say
        // "some descendant at depth ≥ 2")
        assert!(equivalent(&expr("<down/down+>"), &expr("<down+/down>"), 2).unwrap());
        assert!(equivalent(&expr("<down/down+>"), &expr("<down+/down+>"), 2).unwrap());
        // ⟨↓⟩ ≡ ⟨↓⁺⟩ (a node has a descendant iff it has a child!) — the
        // decision procedure certifies the non-obvious equivalence
        assert!(equivalent(&expr("<down>"), &expr("<down+>"), 2).unwrap());
        // but with a label guard they differ: an a1-descendant need not be
        // an a1-child
        assert!(!equivalent(&expr("<down[a1]>"), &expr("<down+[a1]>"), 2).unwrap());
    }

    #[test]
    fn validity_via_containment() {
        // ⊤ is contained in everything satisfiable-at-every-node? no —
        // validity of g means true ⊨ g
        assert!(contains(&expr("true"), &expr("a0 or !a0"), 2).unwrap());
        assert!(!contains(&expr("true"), &expr("a0"), 2).unwrap());
    }
}

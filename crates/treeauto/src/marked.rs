//! Marked-alphabet automata for node-selecting (unary) queries.
//!
//! A unary query `T ↦ {selected nodes}` is *regular* iff the language of
//! marked trees `{(T, v) | v selected}` over `Σ × {0,1}` is regular — the
//! standard device for comparing node-selecting query languages with MSO.
//! A marked label `(a, m)` is encoded as the label index `2·a + m`.

use crate::nfta::Nfta;
use twx_xtree::{Label, NodeId, NodeSet, Tree, TreeBuilder};

/// Encodes `(label, mark)` into the doubled alphabet.
pub fn mark_label(l: Label, marked: bool) -> Label {
    Label(l.0 * 2 + u32::from(marked))
}

/// Decodes a doubled-alphabet label.
pub fn unmark_label(l: Label) -> (Label, bool) {
    (Label(l.0 / 2), l.0 % 2 == 1)
}

/// Produces the copy of `t` over `Σ × {0,1}` with exactly `v` marked.
pub fn mark_tree(t: &Tree, v: NodeId) -> Tree {
    let mut b = TreeBuilder::with_capacity(t.len());
    fn rec(t: &Tree, u: NodeId, v: NodeId, b: &mut TreeBuilder) {
        b.open(mark_label(t.label(u), u == v));
        let mut c = t.first_child(u);
        while let Some(w) = c {
            rec(t, w, v, b);
            c = t.next_sibling(w);
        }
        b.close();
    }
    rec(t, t.root(), v, &mut b);
    b.finish()
}

/// A node-selecting query given as an automaton over the marked alphabet:
/// it selects `v` in `T` iff it accepts `mark(T, v)`.
#[derive(Clone, Debug)]
pub struct MarkedQuery {
    /// The automaton over `Σ × {0,1}` (so `n_labels` is even).
    pub auto: Nfta,
}

impl MarkedQuery {
    /// Evaluates the query on `t` (one automaton run per node; the marked
    /// formalism trades evaluation speed for closure properties).
    pub fn select(&self, t: &Tree) -> NodeSet {
        let mut out = NodeSet::empty(t.len());
        for v in t.nodes() {
            if self.auto.accepts(&mark_tree(t, v)) {
                out.insert(v);
            }
        }
        out
    }

    /// Query complement (selects exactly the non-selected nodes).
    pub fn negate(&self) -> MarkedQuery {
        MarkedQuery {
            auto: self.auto.complement(),
        }
    }

    /// Query intersection.
    pub fn intersect(&self, other: &MarkedQuery) -> MarkedQuery {
        MarkedQuery {
            auto: self.auto.intersect(&other.auto),
        }
    }

    /// Query union.
    pub fn union(&self, other: &MarkedQuery) -> MarkedQuery {
        MarkedQuery {
            auto: self.auto.union(&other.auto),
        }
    }

    /// The query selecting every node carrying the given (unmarked) label.
    pub fn label_query(n_labels: u32, l: Label) -> MarkedQuery {
        // run over marked alphabet: state 0 = subtree with no mark,
        // state 1 = subtree whose mark sits on an l-labelled node.
        let mut rules = Vec::new();
        for lab in 0..n_labels {
            for m in [false, true] {
                for left in [None, Some(0), Some(1)] {
                    for right in [None, Some(0), Some(1)] {
                        let marks =
                            u32::from(m) + u32::from(left == Some(1)) + u32::from(right == Some(1));
                        if marks > 1 {
                            continue; // at most one mark in a valid marking
                        }
                        let good_here = m && Label(lab) == l;
                        let state = u32::from(good_here || left == Some(1) || right == Some(1));
                        if m && !good_here {
                            continue; // mark on a wrong label: reject branch
                        }
                        rules.push(crate::nfta::Rule {
                            left,
                            right,
                            label: mark_label(Label(lab), m),
                            state,
                        });
                    }
                }
            }
        }
        MarkedQuery {
            auto: Nfta {
                n_states: 2,
                n_labels: n_labels * 2,
                rules,
                finals: vec![1],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::parse::parse_sexp;

    #[test]
    fn mark_roundtrip() {
        assert_eq!(unmark_label(mark_label(Label(3), true)), (Label(3), true));
        assert_eq!(unmark_label(mark_label(Label(0), false)), (Label(0), false));
    }

    #[test]
    fn mark_tree_marks_one_node() {
        let t = parse_sexp("(a (b c) d)").unwrap().tree;
        let m = mark_tree(&t, NodeId(2));
        assert_eq!(m.len(), t.len());
        let marked: Vec<NodeId> = m.nodes().filter(|&v| unmark_label(m.label(v)).1).collect();
        assert_eq!(marked, vec![NodeId(2)]);
        // structure preserved
        assert_eq!(m.parent(NodeId(2)), t.parent(NodeId(2)));
    }

    #[test]
    fn label_query_selects_labels() {
        // alphabet a=0, b=1
        let mut ab = twx_xtree::Alphabet::from_names(["a", "b"]);
        let t = twx_xtree::parse::parse_sexp_with("(a (b a) b)", &mut ab).unwrap();
        let q = MarkedQuery::label_query(2, Label(1));
        let sel = q.select(&t);
        let expect: Vec<u32> = t
            .nodes()
            .filter(|&v| t.label(v) == Label(1))
            .map(|v| v.0)
            .collect();
        assert_eq!(sel.iter().map(|v| v.0).collect::<Vec<_>>(), expect);
    }

    #[test]
    fn negation_flips_selection() {
        let mut ab = twx_xtree::Alphabet::from_names(["a", "b"]);
        let t = twx_xtree::parse::parse_sexp_with("(a b a)", &mut ab).unwrap();
        let q = MarkedQuery::label_query(2, Label(0));
        let nq = q.negate();
        let sel = q.select(&t);
        let mut nsel = nq.select(&t);
        nsel.complement();
        assert_eq!(sel, nsel);
    }

    #[test]
    fn boolean_combinations() {
        let mut ab = twx_xtree::Alphabet::from_names(["a", "b"]);
        let t = twx_xtree::parse::parse_sexp_with("(a (b a) b)", &mut ab).unwrap();
        let qa = MarkedQuery::label_query(2, Label(0));
        let qb = MarkedQuery::label_query(2, Label(1));
        assert_eq!(qa.intersect(&qb).select(&t).count(), 0);
        assert_eq!(qa.union(&qb).select(&t).count(), t.len());
    }
}

//! Process-wide metrics registry: named gauges and histograms behind
//! atomics, with a Prometheus-style text exposition.
//!
//! Thread-local counters answer "what did *this* evaluation cost";
//! a long-running server also needs process-lifetime series — queue
//! depths, request-latency distributions — observable at any moment
//! from any thread. The [`MetricsRegistry`] holds those: each metric is
//! a `(name, labels)` key mapped to an [`Arc`]'d [`Gauge`] (one relaxed
//! `AtomicU64`) or [`AtomicHistogram`]. Instrumented code registers a
//! handle once (at service construction) and records through the `Arc`
//! with no further registry involvement — the record path never takes
//! the registry lock.
//!
//! [`render_prometheus`](MetricsRegistry::render_prometheus) serialises
//! every registered series in the Prometheus text format (gauges as
//! bare samples, histograms as cumulative `_bucket{le="…"}` samples
//! plus `_sum`/`_count`), which is what `twx-serve`'s `metrics` op
//! ships over the wire.
//!
//! Registry structure is always compiled (handles must exist so
//! downstream code type-checks in both configurations); only the
//! *recording* calls are feature-gated no-ops when `enabled` is off, so
//! a disabled build exposes the metric names with permanently-zero
//! values.

use crate::hist::AtomicHistogram;
use std::sync::atomic::AtomicU64;
#[cfg(feature = "enabled")]
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock, RwLock};

/// A single-value metric behind one relaxed atomic.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge. No-op without the `enabled` feature.
    #[inline(always)]
    pub fn set(&self, v: u64) {
        #[cfg(feature = "enabled")]
        self.0.store(v, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        {
            let _ = v;
        }
    }

    /// Adds to the gauge (monotone-counter usage). No-op without the
    /// `enabled` feature.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.0.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        {
            let _ = n;
        }
    }

    /// Increments the gauge by one. No-op without the `enabled` feature.
    #[inline(always)]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (always 0 when recording is disabled, since
    /// nothing ever stores).
    pub fn get(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A metric's identity: name plus `(label, value)` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// `name{k="v",…}` — the Prometheus sample identity (bare name when
    /// unlabelled). `extra` lets histogram rendering append `le`.
    fn render(&self, extra: Option<(&str, &str)>) -> String {
        let mut out = self.name.clone();
        let labels: Vec<(&str, &str)> = self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra)
            .collect();
        if !labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push_str("=\"");
                // Prometheus label-value escaping
                for ch in v.chars() {
                    match ch {
                        '\\' => out.push_str("\\\\"),
                        '"' => out.push_str("\\\""),
                        '\n' => out.push_str("\\n"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            out.push('}');
        }
        out
    }
}

enum Series {
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicHistogram>),
}

/// The process-wide registry (see the [module docs](self)).
#[derive(Default)]
pub struct MetricsRegistry {
    series: RwLock<Vec<(MetricKey, Series)>>,
}

impl MetricsRegistry {
    /// An empty registry (tests construct their own; production code
    /// uses [`global`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or re-registers) a gauge under `(name, labels)` and
    /// returns its handle. Re-registering an existing key replaces the
    /// stored series with the returned fresh handle — the latest
    /// registrant wins, so a re-constructed service re-binds its
    /// metrics instead of appending duplicates.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let handle = Arc::new(Gauge::new());
        self.insert(
            MetricKey::new(name, labels),
            Series::Gauge(Arc::clone(&handle)),
        );
        handle
    }

    /// Registers (or re-registers) a histogram; same replacement
    /// semantics as [`gauge`](Self::gauge).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicHistogram> {
        let handle = Arc::new(AtomicHistogram::new());
        self.insert(
            MetricKey::new(name, labels),
            Series::Histogram(Arc::clone(&handle)),
        );
        handle
    }

    fn insert(&self, key: MetricKey, series: Series) {
        let mut slots = self.series.write().expect("metrics registry poisoned");
        if let Some(slot) = slots.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = series;
        } else {
            slots.push((key, series));
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.read().expect("metrics registry poisoned").len()
    }

    /// True iff nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a registered histogram's point-in-time view (`None` if
    /// the key is absent or bound to a gauge).
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<crate::hist::Histogram> {
        let key = MetricKey::new(name, labels);
        let slots = self.series.read().expect("metrics registry poisoned");
        slots.iter().find_map(|(k, s)| match s {
            Series::Histogram(h) if *k == key => Some(h.load()),
            _ => None,
        })
    }

    /// Every registered histogram as a JSON array of
    /// `{name, labels, count, sum, mean, max, p50…p999}` objects, in
    /// registration order (what the bench harness exports). Gauges are
    /// skipped — their single value belongs in whatever summary owns
    /// them.
    pub fn histograms_to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let slots = self.series.read().expect("metrics registry poisoned");
        Json::Arr(
            slots
                .iter()
                .filter_map(|(key, series)| match series {
                    Series::Histogram(h) => {
                        let mut labels = Json::obj();
                        for (k, v) in &key.labels {
                            labels = labels.field(k.as_str(), v.as_str());
                        }
                        Some(
                            Json::obj()
                                .field("name", key.name.as_str())
                                .field("labels", labels)
                                .field("hist", h.load().to_json()),
                        )
                    }
                    Series::Gauge(_) => None,
                })
                .collect(),
        )
    }

    /// Serialises every series in the Prometheus text exposition
    /// format, in registration order. Gauges render as one sample;
    /// histograms as cumulative `name_bucket{le="…"}` samples over the
    /// non-empty log₂ bucket bounds (plus `le="+Inf"`), then `name_sum`
    /// and `name_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let slots = self.series.read().expect("metrics registry poisoned");
        for (key, series) in slots.iter() {
            match series {
                Series::Gauge(g) => {
                    out.push_str(&format!(
                        "# TYPE {} gauge\n{} {}\n",
                        key.name,
                        key.render(None),
                        g.get()
                    ));
                }
                Series::Histogram(h) => {
                    let snap = h.load();
                    out.push_str(&format!("# TYPE {} histogram\n", key.name));
                    let mut cumulative = 0u64;
                    for (i, &n) in snap.buckets().iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cumulative += n;
                        // log₂ bucket upper bound as the `le` bound
                        let le = if i >= 63 {
                            u64::MAX
                        } else {
                            (1u64 << (i + 1)) - 1
                        };
                        let bucket_key = MetricKey {
                            name: format!("{}_bucket", key.name),
                            labels: key.labels.clone(),
                        };
                        out.push_str(&format!(
                            "{} {}\n",
                            bucket_key.render(Some(("le", &le.to_string()))),
                            cumulative
                        ));
                    }
                    let bucket_key = MetricKey {
                        name: format!("{}_bucket", key.name),
                        labels: key.labels.clone(),
                    };
                    out.push_str(&format!(
                        "{} {}\n",
                        bucket_key.render(Some(("le", "+Inf"))),
                        snap.count()
                    ));
                    let sum_key = MetricKey {
                        name: format!("{}_sum", key.name),
                        labels: key.labels.clone(),
                    };
                    let count_key = MetricKey {
                        name: format!("{}_count", key.name),
                        labels: key.labels.clone(),
                    };
                    out.push_str(&format!("{} {}\n", sum_key.render(None), snap.sum()));
                    out.push_str(&format!("{} {}\n", count_key.render(None), snap.count()));
                }
            }
        }
        out
    }
}

/// The process-wide registry instance.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn gauges_register_and_render() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("twx_queue_depth", &[]);
        g.set(7);
        g.add(3);
        assert_eq!(g.get(), 10);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE twx_queue_depth gauge"));
        assert!(text.contains("twx_queue_depth 10"));
    }

    #[test]
    fn labels_render_and_escape() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("twx_evals", &[("backend", "product"), ("q", "a\"b")]);
        g.incr();
        let text = reg.render_prometheus();
        assert!(
            text.contains(r#"twx_evals{backend="product",q="a\"b"} 1"#),
            "got: {text}"
        );
    }

    #[test]
    fn reregistering_replaces_not_duplicates() {
        let reg = MetricsRegistry::new();
        let g1 = reg.gauge("twx_conns", &[]);
        g1.set(5);
        let g2 = reg.gauge("twx_conns", &[]);
        assert_eq!(reg.len(), 1);
        assert_eq!(g2.get(), 0, "fresh handle starts at zero");
        g2.set(9);
        assert!(reg.render_prometheus().contains("twx_conns 9"));
        // the replaced handle still works, it just isn't rendered
        g1.set(100);
        assert!(!reg.render_prometheus().contains("twx_conns 100"));
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("twx_latency_ns", &[("op", "query")]);
        for v in [3u64, 3, 100, 5_000] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE twx_latency_ns histogram"));
        // 3 and 3 land in le="3"; cumulative counts grow monotonically
        assert!(text.contains(r#"twx_latency_ns_bucket{op="query",le="3"} 2"#));
        assert!(text.contains(r#"twx_latency_ns_bucket{op="query",le="127"} 3"#));
        assert!(text.contains(r#"twx_latency_ns_bucket{op="query",le="8191"} 4"#));
        assert!(text.contains(r#"twx_latency_ns_bucket{op="query",le="+Inf"} 4"#));
        assert!(text.contains(r#"twx_latency_ns_sum{op="query"} 5106"#));
        assert!(text.contains(r#"twx_latency_ns_count{op="query"} 4"#));
    }

    #[test]
    fn histogram_snapshot_lookup() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("twx_eval_ns", &[("backend", "twa")]);
        h.record(1000);
        let snap = reg
            .histogram_snapshot("twx_eval_ns", &[("backend", "twa")])
            .expect("registered histogram");
        assert_eq!(snap.count(), 1);
        assert!(reg.histogram_snapshot("twx_eval_ns", &[]).is_none());
        assert!(reg.histogram_snapshot("absent", &[]).is_none());
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global() as *const MetricsRegistry;
        let b = global() as *const MetricsRegistry;
        assert_eq!(a, b);
    }
}

#[cfg(all(test, not(feature = "enabled")))]
mod disabled_tests {
    use super::*;

    #[test]
    fn disabled_metrics_register_but_stay_zero() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("twx_conns", &[]);
        g.set(5);
        g.incr();
        assert_eq!(g.get(), 0);
        let h = reg.histogram("twx_latency_ns", &[]);
        h.record(42);
        assert!(h.load().is_empty());
        // exposition still lists the names, with zero values
        let text = reg.render_prometheus();
        assert!(text.contains("twx_conns 0"));
        assert!(text.contains("twx_latency_ns_count 0"));
    }
}

//! Structured per-request tracing: trace ids, named stage spans, and
//! capturable span trees.
//!
//! A [`TraceId`] is a process-unique 64-bit id (SplitMix64-finalised
//! sequence number) tagging one request end to end — it appears in the
//! serving tier's answers, slow-query log, and trace output, so a tail
//! latency seen in a histogram can be joined back to the exact request
//! that caused it.
//!
//! A [`SpanTree`] is the on-demand view of *where that request's time
//! went*: a tree of named [`SpanNode`]s (the pipeline stages — `parse`,
//! `simplify`, `plan_cache`, `eval`, per-shard work, `merge`), each with
//! its start offset and duration in nanoseconds plus the
//! [`Counters`] delta the stage produced (inclusive of child stages,
//! like the thread-local counters it is derived from).
//!
//! # Collection model
//!
//! Instrumented code calls [`stage`] at every pipeline boundary; the
//! guard is an almost-free no-op (one thread-local check) unless a
//! collector is active on the thread. A caller that wants a trace
//! brackets the work with [`begin`]/[`take`]:
//!
//! ```
//! use twx_obs::trace;
//! let id = trace::TraceId::next();
//! trace::begin("request", id);
//! {
//!     let _g = trace::stage("parse"); // nested work...
//! }
//! let tree = trace::take();
//! #[cfg(feature = "enabled")]
//! assert_eq!(tree.unwrap().root.children[0].name, "parse");
//! ```
//!
//! Collectors are **per thread**. Work shipped to another thread is
//! traced there (the worker brackets its own slice with
//! [`begin_at`]/[`take`], using the request's origin instant so offsets
//! stay on one clock) and the resulting subtree is grafted into the
//! requester's tree with [`SpanNode::push_child`] — the exact analogue
//! of the counters' drain/merge protocol.
//!
//! Without the `enabled` feature every function here is an empty
//! inline no-op, [`stage`] returns a zero-sized guard, and [`take`]
//! returns `None`: instrumentation can never perturb an uninstrumented
//! build.

use crate::json::Json;
use crate::Counters;
use std::fmt;
#[cfg(feature = "enabled")]
use std::time::Instant;

/// A process-unique trace id (see the [module docs](self)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Allocates the next id: a SplitMix64 finalisation of a global
    /// sequence counter, so ids are unique within the process and
    /// well-mixed (no accidental ordering information leaks into
    /// sampled logs). Returns `TraceId(0)` without the `enabled`
    /// feature.
    pub fn next() -> TraceId {
        #[cfg(feature = "enabled")]
        {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            // SplitMix64 finalizer (Steele et al.); bijective on u64
            let mut z = n.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            TraceId((z ^ (z >> 31)) | 1) // never 0: 0 means "untraced"
        }
        #[cfg(not(feature = "enabled"))]
        TraceId(0)
    }

    /// The canonical 16-hex-digit rendering used in logs and JSON.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One named span: a stage of the pipeline with its timing, counter
/// delta, and nested child stages.
#[derive(Clone, Debug, Default)]
pub struct SpanNode {
    /// Stage name (`parse`, `simplify`, `plan_cache`, `eval`, …).
    pub name: String,
    /// Start offset in nanoseconds from the trace origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Counter delta over the span (inclusive of children).
    pub counters: Counters,
    /// Nested stages, in completion order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A childless span built from explicit measurements (used to graft
    /// externally-timed stages such as queue waits into a tree).
    pub fn leaf(name: &str, start_ns: u64, dur_ns: u64) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            start_ns,
            dur_ns,
            counters: Counters::default(),
            children: Vec::new(),
        }
    }

    /// Grafts a subtree (e.g. a worker thread's capture) under this
    /// span.
    pub fn push_child(&mut self, child: SpanNode) {
        self.children.push(child);
    }

    /// Total spans in the subtree, this one included.
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::span_count)
            .sum::<usize>()
    }

    /// JSON rendering: name, timings, non-zero counters, children.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, v) in self.counters.iter() {
            if v > 0 {
                counters = counters.field(name, v);
            }
        }
        Json::obj()
            .field("name", self.name.as_str())
            .field("start_ns", self.start_ns)
            .field("dur_ns", self.dur_ns)
            .field("counters", counters)
            .field(
                "children",
                self.children
                    .iter()
                    .map(SpanNode::to_json)
                    .collect::<Vec<_>>(),
            )
    }
}

/// A completed trace: the id plus the root span.
#[derive(Clone, Debug)]
pub struct SpanTree {
    /// The request's trace id.
    pub trace_id: TraceId,
    /// The root span (its children are the pipeline stages).
    pub root: SpanNode,
}

impl SpanTree {
    /// JSON rendering (`trace_id` in hex plus the span tree).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("trace_id", self.trace_id.to_hex())
            .field("root", self.root.to_json())
    }
}

#[cfg(feature = "enabled")]
struct Pending {
    node: SpanNode,
    started: Instant,
    counters_at_start: crate::Snapshot,
}

#[cfg(feature = "enabled")]
struct Collector {
    trace_id: TraceId,
    origin: Instant,
    /// `stack[0]` is the pending root; deeper entries are open stages.
    stack: Vec<Pending>,
}

#[cfg(feature = "enabled")]
thread_local! {
    static ACTIVE: std::cell::RefCell<Option<Collector>> =
        const { std::cell::RefCell::new(None) };
}

/// Starts collecting a trace on this thread, rooted at a span called
/// `name` starting now. Returns `false` (and does nothing) if a trace
/// is already active — traces do not nest; use [`stage`] inside one.
/// No-op returning `false` without the `enabled` feature.
pub fn begin(name: &str, id: TraceId) -> bool {
    #[cfg(feature = "enabled")]
    {
        begin_at(name, id, Instant::now())
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (name, id);
        false
    }
}

/// Like [`begin`], but with an explicit origin instant: span offsets
/// are measured from `origin`, so subtrees collected on different
/// threads of one request share a clock (pass the request's submit
/// instant everywhere).
#[cfg_attr(not(feature = "enabled"), allow(unused_variables))]
pub fn begin_at(name: &str, id: TraceId, origin: std::time::Instant) -> bool {
    #[cfg(feature = "enabled")]
    {
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            if slot.is_some() {
                return false;
            }
            let now = Instant::now();
            *slot = Some(Collector {
                trace_id: id,
                origin,
                stack: vec![Pending {
                    node: SpanNode {
                        name: name.to_string(),
                        start_ns: now.duration_since(origin).as_nanos() as u64,
                        ..SpanNode::default()
                    },
                    started: now,
                    counters_at_start: crate::snapshot(),
                }],
            });
            true
        })
    }
    #[cfg(not(feature = "enabled"))]
    false
}

/// True iff a trace is being collected on this thread.
pub fn active() -> bool {
    #[cfg(feature = "enabled")]
    {
        ACTIVE.with(|a| a.borrow().is_some())
    }
    #[cfg(not(feature = "enabled"))]
    false
}

/// Finishes the trace on this thread and returns it, or `None` if no
/// trace was active (always `None` without the `enabled` feature).
/// Stages still open (guards alive) are closed as of now.
pub fn take() -> Option<SpanTree> {
    #[cfg(feature = "enabled")]
    {
        ACTIVE.with(|a| {
            let collector = a.borrow_mut().take()?;
            let Collector {
                trace_id,
                mut stack,
                ..
            } = collector;
            // close any stages a leaked guard left open
            while stack.len() > 1 {
                let mut top = stack.pop().expect("non-empty stack");
                close(&mut top);
                let parent = stack.last_mut().expect("root remains");
                parent.node.children.push(top.node);
            }
            let mut root = stack.pop().expect("root span");
            close(&mut root);
            Some(SpanTree {
                trace_id,
                root: root.node,
            })
        })
    }
    #[cfg(not(feature = "enabled"))]
    None
}

#[cfg(feature = "enabled")]
fn close(p: &mut Pending) {
    p.node.dur_ns = p.started.elapsed().as_nanos() as u64;
    p.node.counters = crate::delta_since(&p.counters_at_start);
}

/// Grafts an externally-built span (e.g. a worker's subtree or an
/// explicitly-timed [`SpanNode::leaf`]) under the currently open span.
/// No-op when no trace is active.
#[cfg_attr(not(feature = "enabled"), allow(unused_variables))]
pub fn attach(node: SpanNode) {
    #[cfg(feature = "enabled")]
    ACTIVE.with(|a| {
        if let Some(c) = a.borrow_mut().as_mut() {
            if let Some(open) = c.stack.last_mut() {
                open.node.children.push(node);
            }
        }
    });
}

/// Opens a named stage span; the returned guard closes it on drop.
/// When no trace is active on this thread (the overwhelmingly common
/// case on hot paths) this is one thread-local check; without the
/// `enabled` feature it is nothing at all.
#[must_use = "a stage span is recorded only while its guard is alive"]
#[inline]
pub fn stage(name: &'static str) -> StageGuard {
    #[cfg(feature = "enabled")]
    {
        let armed = ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let Some(c) = slot.as_mut() else {
                return false;
            };
            let now = Instant::now();
            c.stack.push(Pending {
                node: SpanNode {
                    name: name.to_string(),
                    start_ns: now.duration_since(c.origin).as_nanos() as u64,
                    ..SpanNode::default()
                },
                started: now,
                counters_at_start: crate::snapshot(),
            });
            true
        });
        StageGuard { armed }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        StageGuard {}
    }
}

/// RAII guard for one [`stage`] span.
pub struct StageGuard {
    #[cfg(feature = "enabled")]
    armed: bool,
}

impl Drop for StageGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if self.armed {
            ACTIVE.with(|a| {
                if let Some(c) = a.borrow_mut().as_mut() {
                    // the root (index 0) is never a stage; a stage guard
                    // can only close an entry it pushed
                    if c.stack.len() > 1 {
                        let mut top = c.stack.pop().expect("stage entry");
                        close(&mut top);
                        let parent = c.stack.last_mut().expect("parent span");
                        parent.node.children.push(top.node);
                    }
                }
            });
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::Counter;

    #[test]
    fn trace_ids_are_unique_nonzero_and_hex() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert_ne!(a, b);
        assert_ne!(a.0, 0);
        assert_eq!(a.to_hex().len(), 16);
        assert_eq!(format!("{a}"), a.to_hex());
    }

    #[test]
    fn stages_nest_and_record_counter_deltas() {
        assert!(!active());
        let id = TraceId::next();
        assert!(begin("request", id));
        {
            let _parse = stage("parse");
            crate::add(Counter::SimplifyPasses, 2);
        }
        {
            let _eval = stage("eval");
            crate::add(Counter::ProductConfigs, 7);
            {
                let _inner = stage("subtest");
                crate::add(Counter::TwaSteps, 1);
            }
        }
        let tree = take().expect("trace captured");
        assert!(!active());
        assert_eq!(tree.trace_id, id);
        let root = &tree.root;
        assert_eq!(root.name, "request");
        assert_eq!(root.children.len(), 2);
        let parse = &root.children[0];
        assert_eq!(parse.name, "parse");
        assert_eq!(parse.counters.get(Counter::SimplifyPasses), 2);
        let eval = &root.children[1];
        assert_eq!(eval.name, "eval");
        // inclusive counters: the nested stage's delta is inside eval's
        assert_eq!(eval.counters.get(Counter::ProductConfigs), 7);
        assert_eq!(eval.counters.get(Counter::TwaSteps), 1);
        assert_eq!(eval.children[0].name, "subtest");
        assert_eq!(eval.children[0].counters.get(Counter::TwaSteps), 1);
        // root delta includes everything
        assert_eq!(root.counters.get(Counter::ProductConfigs), 7);
        assert_eq!(root.span_count(), 4);
        // offsets are monotone within a thread
        assert!(eval.start_ns >= parse.start_ns);
    }

    #[test]
    fn stage_without_active_trace_is_inert() {
        {
            let _g = stage("orphan");
        }
        assert!(take().is_none());
    }

    #[test]
    fn traces_do_not_nest() {
        assert!(begin("outer", TraceId::next()));
        assert!(!begin("inner", TraceId::next()), "second begin refused");
        let tree = take().expect("outer trace survives");
        assert_eq!(tree.root.name, "outer");
        assert!(take().is_none());
    }

    #[test]
    fn attach_grafts_external_subtrees() {
        assert!(begin("request", TraceId::next()));
        attach(SpanNode::leaf("queue_wait", 10, 250));
        let mut shard = SpanNode::leaf("shard-0", 260, 1_000);
        shard.push_child(SpanNode::leaf("eval", 300, 900));
        attach(shard);
        let tree = take().unwrap();
        assert_eq!(tree.root.children.len(), 2);
        assert_eq!(tree.root.children[0].name, "queue_wait");
        assert_eq!(tree.root.children[0].dur_ns, 250);
        assert_eq!(tree.root.children[1].children[0].name, "eval");
    }

    #[test]
    fn json_rendering_parses_and_drops_zero_counters() {
        assert!(begin("request", TraceId::next()));
        {
            let _g = stage("eval");
            crate::add(Counter::TwaSteps, 3);
        }
        let tree = take().unwrap();
        let rendered = tree.to_json().render();
        let parsed = crate::json::parse(&rendered).expect("trace JSON parses");
        let Json::Obj(fields) = parsed else {
            panic!("not an object")
        };
        assert!(fields.iter().any(|(k, _)| k == "trace_id"));
        assert!(rendered.contains("twa_steps"));
        assert!(
            !rendered.contains("product_configs"),
            "zero counters omitted from trace JSON"
        );
    }

    #[test]
    fn leaked_guard_is_closed_by_take() {
        assert!(begin("request", TraceId::next()));
        let guard = stage("stuck");
        let tree = take().unwrap();
        assert_eq!(tree.root.children[0].name, "stuck");
        drop(guard); // guard after take: must not panic or corrupt
        assert!(!active());
    }
}

#[cfg(all(test, not(feature = "enabled")))]
mod disabled_tests {
    use super::*;

    #[test]
    fn disabled_tracing_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<StageGuard>(), 0);
        assert_eq!(TraceId::next(), TraceId(0));
        assert!(!begin("request", TraceId::next()));
        {
            let _g = stage("eval");
        }
        assert!(!active());
        assert!(take().is_none());
    }
}

//! A minimal hand-rolled JSON value + serializer.
//!
//! The offline build rules out `serde`; the harness and the EXPLAIN
//! exporter only need to *emit* JSON, and only a small, well-behaved
//! subset (finite numbers, string keys). This module provides exactly
//! that: a [`Json`] tree and a compact, RFC 8259-conformant writer.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (emitted exactly, no float round-trip).
    Int(u64),
    /// A float; non-finite values are emitted as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (chainable).
    ///
    /// # Panics
    /// If `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on non-object Json"),
        }
        self
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Int(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as u64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// A strict validating parser for the subset this crate emits.
///
/// Exists so the harness smoke test can verify that an emitted
/// `BENCH_HARNESS.json` actually parses, without external crates.
/// Returns the parsed value, or a message with the byte offset of the
/// first error.
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, "\"")?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // advance over one UTF-8 scalar
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if let Ok(n) = text.parse::<u64>() {
        return Ok(Json::Int(n));
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj()
            .field("name", "e1")
            .field("ok", true)
            .field("count", 42u64)
            .field("ratio", 0.5)
            .field("rows", Json::Arr(vec![Json::Int(1), Json::Null]));
        assert_eq!(
            j.render(),
            r#"{"name":"e1","ok":true,"count":42,"ratio":0.5,"rows":[1,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn roundtrips_through_parser() {
        let j = Json::obj()
            .field("s", "quote \" slash \\ nl \n")
            .field("arr", Json::Arr(vec![Json::Bool(false), Json::Num(1.25)]))
            .field("n", 18446744073709551615u64)
            .field("null", Json::Null);
        let parsed = parse(&j.render()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}

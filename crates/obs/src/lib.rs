//! # twx-obs — zero-dependency observability for the treewalk workspace
//!
//! The paper's contribution is an *effective* equivalence triangle
//! (Regular XPath(W) ≡ FO(MTC) ≡ nested TWA), and the repository's
//! experiments compare the **cost profiles** of the three pipelines.
//! Wall-clock alone cannot explain those costs; this crate provides the
//! structural metrics: how many product configurations an NFA run
//! expanded, how many fixpoint iterations a `TC` evaluation needed, how
//! many nested sub-automaton tests an NTWA run triggered, and how large
//! each compiled artifact (NFA, formula, automaton) came out.
//!
//! Design constraints, in order:
//!
//! 1. **Zero external dependencies** — the build environment is offline;
//!    `tracing`/`metrics` are not options. Everything here is `std`.
//! 2. **Feature-gated to nothing** — with the `enabled` feature off (the
//!    default is on), [`incr`]/[`add`] are empty `#[inline(always)]`
//!    functions and [`Span`] is a zero-sized type, so instrumented hot
//!    loops compile to exactly the uninstrumented code.
//! 3. **Cheap when on** — counters are thread-local `Cell<u64>` slots
//!    (no atomics on the hot path, no cross-test interference when the
//!    test harness runs threads in parallel).
//!
//! The usage pattern is *snapshot–run–delta*:
//!
//! ```
//! use twx_obs::{add, delta_since, snapshot, Counter};
//! let before = snapshot();
//! add(Counter::ProductConfigs, 3); // evaluator hot loop does this
//! let counters = delta_since(&before);
//! #[cfg(feature = "enabled")]
//! assert_eq!(counters.get(Counter::ProductConfigs), 3);
//! ```

pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use hist::{AtomicHistogram, Histogram};
pub use profile::{CompiledSizes, QueryProfile};
pub use trace::{SpanNode, SpanTree, TraceId};

#[cfg(feature = "enabled")]
use std::cell::Cell;

/// Whether instrumentation is compiled in.
pub const ENABLED: bool = cfg!(feature = "enabled");

macro_rules! counters {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)*) => {
        /// Every structural metric the workspace records.
        ///
        /// The taxonomy follows the paper's constructions — see the
        /// variant docs and `DESIGN.md` ("Counter taxonomy") for what
        /// each one measures.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Counter {
            $($(#[$doc])* $variant,)*
        }

        /// Number of counter slots.
        pub const N_COUNTERS: usize = [$(Counter::$variant),*].len();

        /// All counters, in slot order.
        pub const ALL_COUNTERS: [Counter; N_COUNTERS] = [$(Counter::$variant),*];

        impl Counter {
            /// The stable snake_case name used in text and JSON exports.
            pub fn name(self) -> &'static str {
                match self {
                    $(Counter::$variant => $name,)*
                }
            }
        }
    };
}

counters! {
    /// Product configurations `(node, NFA state)` newly expanded by the
    /// Regular XPath(W) product evaluator (the `O(|T|·|A|)` bound of the
    /// paper is a bound on exactly this number).
    ProductConfigs => "product_configs",
    /// Node-set materialisations of NFA test labels (one per distinct
    /// test per evaluation).
    ProductTestEvals => "product_test_evals",
    /// Single-pass axis image/preimage computations in the Core XPath
    /// evaluator (each is one `O(|T|)` scan).
    CoreStepImages => "core_step_images",
    /// Nodes scanned by those Core XPath passes.
    CoreNodesScanned => "core_nodes_scanned",
    /// Subformula evaluations performed by the FO(MTC) model checker.
    FoEvalSteps => "fo_eval_steps",
    /// Nodes bound by `∃`/`∀` during FO(MTC) evaluation (the `O(n^k)`
    /// quantifier cost).
    FoQuantifierBindings => "fo_quantifier_bindings",
    /// Frontier nodes popped by the `TC` fixpoint search.
    TcIterations => "tc_iterations",
    /// Candidate edges `(a, b)` decided (by recursive evaluation) inside
    /// `TC` fixpoints.
    TcEdgeTests => "tc_edge_tests",
    /// NTWA configurations `(node, state)` newly expanded by the walking
    /// evaluator.
    TwaSteps => "twa_steps",
    /// Nested sub-automaton acceptance evaluations (the "nested" in
    /// nested TWA: one per sub-automaton per scope actually resolved).
    TwaSubtestInvocations => "twa_subtest_invocations",
    /// Subtree copies extracted for `W` (within) semantics or
    /// subtree-scoped nested tests.
    SubtreeExtractions => "subtree_extractions",
    /// `BitMatrix` cells written while materialising binary relations.
    BitMatrixCells => "bitmatrix_cells",
    /// Compiled-artifact cache hits (e.g. a `Prepared` query reusing its
    /// compiled NFA/automaton/formula).
    MemoHits => "memo_hits",
    /// Compiled-artifact cache misses (compilations actually performed).
    MemoMisses => "memo_misses",
    /// Engine plan-cache lookups that found an already-compiled plan for
    /// the `(canonical query, backend)` key.
    PlanCacheHits => "plan_cache_hits",
    /// Engine plan-cache lookups that had to compile a fresh plan.
    PlanCacheMisses => "plan_cache_misses",
    /// Plans evicted from the engine plan cache (FIFO, capacity bound).
    PlanCacheEvictions => "plan_cache_evictions",
    /// Fixpoint passes performed by the mandatory `simplify_rpath` /
    /// `simplify_rnode` pipeline stage.
    SimplifyPasses => "simplify_passes",
    /// AST nodes removed by simplification (input size − output size;
    /// the rules are size-non-increasing, so this never underflows).
    SimplifyShrunkNodes => "simplify_shrunk_nodes",
    /// Downward-fragment filter subexpressions proved unsatisfiable by
    /// the tree-automaton decision procedure and replaced with `⊥`
    /// during the mandatory simplify stage.
    SimplifyUnsatPruned => "simplify_unsat_pruned",
    /// Corpus query requests submitted to a `QueryService`.
    CorpusRequests => "corpus_requests",
    /// Corpus requests rejected by admission control (`Overloaded`).
    CorpusRejected => "corpus_rejected",
    /// Corpus requests whose deadline expired before every shard
    /// finished (the answer is partial).
    CorpusTimeouts => "corpus_timeouts",
    /// Nanoseconds service workers spent evaluating shard tasks (span
    /// timer; merged into the requester's profile on aggregation).
    CorpusShardEvalNanos => "corpus_shard_eval_nanos",
    /// Nanoseconds shard tasks spent queued before a worker picked them
    /// up (admission-to-execution wait).
    CorpusQueueWaitNanos => "corpus_queue_wait_nanos",
    /// NFA states produced by Regular XPath(W) → NFA compilation.
    CompiledNfaStates => "compiled_nfa_states",
    /// FO(MTC) formula size produced by the logic translation.
    CompiledFormulaSize => "compiled_formula_size",
    /// Total NTWA states (top + nested) produced by the automaton
    /// translation.
    CompiledNtwaStates => "compiled_ntwa_states",
    /// Nested sub-automata produced by the automaton translation.
    CompiledNtwaSubtests => "compiled_ntwa_subtests",
    /// Query/document pairs checked by the differential conformance
    /// harness (one per fuzz iteration, all routes).
    ConformChecks => "conform_checks",
    /// Divergences the conformance harness detected (routes disagreeing
    /// on an answer set).
    ConformDivergences => "conform_divergences",
    /// Accepted shrink steps while minimising a divergent repro (query
    /// and document steps both count).
    ConformShrinkSteps => "conform_shrink_steps",
    /// Result-cache lookups answered from a cached node set.
    ResultCacheHits => "result_cache_hits",
    /// Result-cache lookups that had to evaluate.
    ResultCacheMisses => "result_cache_misses",
    /// Result-cache entries inserted after an evaluation.
    ResultCacheInsertions => "result_cache_insertions",
    /// Cached entries carried across an edit because their touched span
    /// was disjoint from the edit's affected span (precision wins).
    ResultCacheCarried => "result_cache_carried",
    /// Cached entries evicted because an edit's affected span overlapped
    /// their touched span.
    ResultCacheInvalidated => "result_cache_invalidated",
    /// Result-cache entries evicted by the capacity bound.
    ResultCacheEvictions => "result_cache_evictions",
    /// Edits committed to a corpus (`Corpus::update`).
    CorpusUpdates => "corpus_updates",
    /// Corpus answers flagged stale (a commit landed after the answer's
    /// snapshot was pinned).
    CorpusStaleAnswers => "corpus_stale_answers",
    /// Nanoseconds spent evaluating (span timer).
    EvalNanos => "eval_nanos",
    /// Nanoseconds spent compiling/translating (span timer).
    CompileNanos => "compile_nanos",
    /// Bytecode instructions dispatched by the twx-vm interpreter
    /// (accumulated locally, flushed once per evaluation).
    VmInstructions => "vm_instructions",
    /// Kleene-closure loop iterations executed by the VM (one per
    /// frontier pass, summed over every `Star` instruction).
    VmClosureIters => "vm_closure_iters",
    /// Register buffers the VM arena had to allocate fresh because the
    /// thread-local pool was empty — zero in a warmed-up serving loop.
    VmArenaAllocs => "vm_arena_allocs",
    /// Instructions in compiled VM programs (compile-time size metric,
    /// the VM analogue of `CompiledNfaStates`).
    CompiledVmInstrs => "compiled_vm_instrs",
    /// Axis images evaluated in the **push** direction (iterate the
    /// frontier, insert successors) by the frontier kernels.
    FrontierPushSteps => "frontier_push_steps",
    /// Axis images evaluated in the **pull** direction (scan candidate
    /// ids, probe predecessors against the frontier).
    FrontierPullSteps => "frontier_pull_steps",
    /// Sparse↔dense representation switches between consecutive
    /// frontiers of a star fixpoint (hysteresis band crossings).
    FrontierSwitches => "frontier_switches",
}

#[cfg(feature = "enabled")]
thread_local! {
    static COUNTERS: [Cell<u64>; N_COUNTERS] =
        std::array::from_fn(|_| Cell::new(0));
}

/// Adds `n` to a counter. No-op without the `enabled` feature.
#[inline(always)]
pub fn add(c: Counter, n: u64) {
    #[cfg(feature = "enabled")]
    COUNTERS.with(|s| {
        let cell = &s[c as usize];
        cell.set(cell.get().wrapping_add(n));
    });
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (c, n);
    }
}

/// Increments a counter by one. No-op without the `enabled` feature.
#[inline(always)]
pub fn incr(c: Counter) {
    add(c, 1);
}

/// A point-in-time copy of this thread's counters.
///
/// Without the `enabled` feature this is a zero-sized token and every
/// delta is all-zero.
#[derive(Clone, Debug)]
pub struct Snapshot {
    #[cfg(feature = "enabled")]
    values: [u64; N_COUNTERS],
}

// `[u64; N]: Default` only holds for N ≤ 32, so spell it out.
impl Default for Snapshot {
    fn default() -> Snapshot {
        Snapshot {
            #[cfg(feature = "enabled")]
            values: [0; N_COUNTERS],
        }
    }
}

/// Captures the current counter values of this thread.
#[inline]
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "enabled")]
    {
        Snapshot {
            values: COUNTERS.with(|s| std::array::from_fn(|i| s[i].get())),
        }
    }
    #[cfg(not(feature = "enabled"))]
    Snapshot::default()
}

/// The counters accumulated since `before` was taken (on this thread).
#[inline]
pub fn delta_since(before: &Snapshot) -> Counters {
    #[cfg(feature = "enabled")]
    {
        let now = snapshot();
        Counters {
            values: std::array::from_fn(|i| now.values[i].wrapping_sub(before.values[i])),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = before;
        Counters::default()
    }
}

/// Takes this thread's counters, **resetting them to zero**.
///
/// This is the worker-thread half of the cross-thread accounting
/// protocol: counters are thread-local, so probes fired on a worker
/// thread are invisible to the thread that spawned the work. A worker
/// calls [`drain`] (or [`drain_into`]) when its unit of work completes
/// and ships the bundle back with the result; the requester folds it
/// into its own slots with [`merge_local`], making the worker's costs
/// visible to `snapshot`/`delta_since` profiles on the requesting
/// thread.
///
/// Returns an all-zero bundle without the `enabled` feature.
#[inline]
pub fn drain() -> Counters {
    #[cfg(feature = "enabled")]
    {
        Counters {
            values: COUNTERS.with(|s| {
                std::array::from_fn(|i| {
                    let v = s[i].get();
                    s[i].set(0);
                    v
                })
            }),
        }
    }
    #[cfg(not(feature = "enabled"))]
    Counters::default()
}

/// Drains this thread's counters into an accumulator (see [`drain`]).
#[inline]
pub fn drain_into(acc: &mut Counters) {
    acc.merge(&drain());
}

/// Adds a counter bundle into **this thread's** live counters — the
/// requester-side half of the protocol described on [`drain`]. After the
/// merge, the bundle is part of any in-flight `snapshot`/`delta_since`
/// window on this thread. No-op without the `enabled` feature.
#[inline]
pub fn merge_local(delta: &Counters) {
    #[cfg(feature = "enabled")]
    COUNTERS.with(|s| {
        for (cell, add) in s.iter().zip(delta.values.iter()) {
            cell.set(cell.get().wrapping_add(*add));
        }
    });
    #[cfg(not(feature = "enabled"))]
    {
        let _ = delta;
    }
}

/// An immutable bundle of counter values (a delta or an absolute view).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counters {
    values: [u64; N_COUNTERS],
}

impl Default for Counters {
    fn default() -> Counters {
        Counters {
            values: [0; N_COUNTERS],
        }
    }
}

impl Counters {
    /// The value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c as usize]
    }

    /// Sets one counter (used by collectors that post-process deltas).
    pub fn set(&mut self, c: Counter, v: u64) {
        self.values[c as usize] = v;
    }

    /// Iterates `(name, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        ALL_COUNTERS.iter().map(|&c| (c.name(), self.get(c)))
    }

    /// True iff every slot is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }

    /// Slot-wise sum (for aggregating across runs).
    pub fn merge(&mut self, other: &Counters) {
        for i in 0..N_COUNTERS {
            self.values[i] = self.values[i].wrapping_add(other.values[i]);
        }
    }
}

/// An RAII span timer: adds elapsed nanoseconds to `counter` on drop.
///
/// Without the `enabled` feature this is a zero-sized no-op.
#[must_use = "a span records time only while it is alive"]
pub struct Span {
    #[cfg(feature = "enabled")]
    counter: Counter,
    #[cfg(feature = "enabled")]
    start: std::time::Instant,
}

/// Starts a span accumulating into `counter`.
#[inline(always)]
pub fn span(counter: Counter) -> Span {
    #[cfg(feature = "enabled")]
    {
        Span {
            counter,
            start: std::time::Instant::now(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = counter;
        Span {}
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        add(self.counter, self.start.elapsed().as_nanos() as u64);
    }
}

/// A manual stopwatch for code that needs one elapsed-time measurement
/// feeding **several** sinks (e.g. a counter *and* a histogram) —
/// [`Span`] can only feed one counter on drop.
///
/// Without the `enabled` feature this is a zero-sized type and
/// [`elapsed_nanos`](Clock::elapsed_nanos) is always 0, so callers can
/// unconditionally write `clock.elapsed_nanos()` into no-op sinks.
#[derive(Clone, Copy, Debug)]
pub struct Clock {
    #[cfg(feature = "enabled")]
    start: std::time::Instant,
}

impl Clock {
    /// Starts the stopwatch.
    #[inline(always)]
    pub fn start() -> Clock {
        Clock {
            #[cfg(feature = "enabled")]
            start: std::time::Instant::now(),
        }
    }

    /// Nanoseconds since [`start`](Clock::start) (0 when disabled).
    #[inline(always)]
    pub fn elapsed_nanos(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.start.elapsed().as_nanos() as u64
        }
        #[cfg(not(feature = "enabled"))]
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut names: Vec<&str> = ALL_COUNTERS.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate counter names");
        for name in names {
            assert!(
                name.chars()
                    .all(|ch| ch.is_ascii_lowercase() || ch == '_' || ch.is_ascii_digit()),
                "{name} not snake_case"
            );
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn deltas_are_isolated_per_snapshot() {
        let s0 = snapshot();
        add(Counter::TcIterations, 5);
        let s1 = snapshot();
        incr(Counter::TcIterations);
        assert_eq!(delta_since(&s0).get(Counter::TcIterations), 6);
        assert_eq!(delta_since(&s1).get(Counter::TcIterations), 1);
        assert_eq!(delta_since(&s1).get(Counter::TwaSteps), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn counters_are_thread_local() {
        let s0 = snapshot();
        std::thread::spawn(|| add(Counter::FoEvalSteps, 100))
            .join()
            .unwrap();
        assert_eq!(delta_since(&s0).get(Counter::FoEvalSteps), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_accumulate_time() {
        let s0 = snapshot();
        {
            let _g = span(Counter::EvalNanos);
            std::hint::black_box((0..10_000).sum::<u64>());
        }
        assert!(delta_since(&s0).get(Counter::EvalNanos) > 0);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_is_zero_sized_and_silent() {
        // compile-time guarantee: the disabled Span carries no data
        assert_eq!(std::mem::size_of::<Span>(), 0);
        assert_eq!(std::mem::size_of::<Snapshot>(), 0);
        let s0 = snapshot();
        add(Counter::TcIterations, 5);
        assert!(delta_since(&s0).is_zero());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn drain_and_merge_carry_counters_across_threads() {
        let before = snapshot();
        // a worker thread does instrumented work and drains its slots
        let bundle = std::thread::spawn(|| {
            add(Counter::TwaSteps, 7);
            incr(Counter::CorpusRequests);
            let b = drain();
            // drain resets: a second drain on the same thread is empty
            assert!(drain().is_zero());
            b
        })
        .join()
        .unwrap();
        assert_eq!(bundle.get(Counter::TwaSteps), 7);
        // the requester folds the bundle into its own live counters, so
        // an open snapshot window sees the worker's costs
        merge_local(&bundle);
        let d = delta_since(&before);
        assert_eq!(d.get(Counter::TwaSteps), 7);
        assert_eq!(d.get(Counter::CorpusRequests), 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn drain_into_accumulates() {
        let mut acc = Counters::default();
        add(Counter::TcIterations, 2);
        drain_into(&mut acc);
        add(Counter::TcIterations, 3);
        drain_into(&mut acc);
        assert_eq!(acc.get(Counter::TcIterations), 5);
    }

    #[test]
    fn merge_sums_slotwise() {
        let mut a = Counters::default();
        a.set(Counter::TwaSteps, 2);
        let mut b = Counters::default();
        b.set(Counter::TwaSteps, 3);
        b.set(Counter::MemoHits, 1);
        a.merge(&b);
        assert_eq!(a.get(Counter::TwaSteps), 5);
        assert_eq!(a.get(Counter::MemoHits), 1);
    }
}

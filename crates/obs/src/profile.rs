//! Per-query EXPLAIN profiles.
//!
//! A [`QueryProfile`] is the structural answer to "what did this
//! evaluation cost?": which backend ran, how big the compiled artifact
//! was, and every counter the evaluator incremented while it ran. The
//! facade engine's `Engine::explain` produces one per query per backend,
//! so the three pipelines of the equivalence triangle can be compared
//! on state expansions and fixpoint iterations instead of wall-clock
//! noise.

use crate::json::Json;
use crate::{Counter, Counters};
use std::fmt;

/// Sizes of the compiled artifacts a backend evaluates.
///
/// Fields are zero when the backend does not produce that artifact
/// (e.g. only the logic backend has a formula size).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompiledSizes {
    /// Size of the parsed query expression (AST nodes).
    pub query_size: usize,
    /// NFA states after Regular XPath(W) → NFA compilation.
    pub nfa_states: usize,
    /// FO(MTC) formula size after the logic translation.
    pub formula_size: usize,
    /// Total NTWA states (top-level + nested).
    pub ntwa_states: usize,
    /// Number of nested sub-automata.
    pub ntwa_subtests: usize,
    /// Bytecode instructions in a compiled VM program (all blocks and
    /// nested sub-programs).
    pub vm_instrs: usize,
    /// Registers in the VM program's file (plus the widest nested file).
    pub vm_regs: usize,
}

impl CompiledSizes {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("query_size", self.query_size)
            .field("nfa_states", self.nfa_states)
            .field("formula_size", self.formula_size)
            .field("ntwa_states", self.ntwa_states)
            .field("ntwa_subtests", self.ntwa_subtests)
            .field("vm_instrs", self.vm_instrs)
            .field("vm_regs", self.vm_regs)
    }
}

/// The full cost profile of one query evaluation.
#[derive(Clone, Debug, Default)]
pub struct QueryProfile {
    /// The query text as given to the engine.
    pub query: String,
    /// Which backend evaluated it (`"product"`, `"automaton"`, `"logic"`).
    pub backend: String,
    /// Nodes in the evaluated tree.
    pub tree_size: usize,
    /// Nodes in the answer set.
    pub result_count: usize,
    /// Wall-clock nanoseconds of the evaluation (0 if obs is disabled).
    pub eval_nanos: u64,
    /// Wall-clock nanoseconds of compilation/translation (0 if disabled).
    pub compile_nanos: u64,
    /// Compiled-artifact sizes.
    pub compiled: CompiledSizes,
    /// Counter deltas recorded during compilation + evaluation.
    pub counters: Counters,
}

impl QueryProfile {
    /// The counters that were actually non-zero, `(name, value)` pairs.
    pub fn active_counters(&self) -> Vec<(&'static str, u64)> {
        self.counters.iter().filter(|&(_, v)| v > 0).collect()
    }

    /// A single headline number: total structural steps taken by the
    /// evaluator (product configs + automaton steps + FO eval steps +
    /// VM instructions). Comparable across backends as "how much work
    /// happened".
    pub fn total_steps(&self) -> u64 {
        self.counters.get(Counter::ProductConfigs)
            + self.counters.get(Counter::TwaSteps)
            + self.counters.get(Counter::FoEvalSteps)
            + self.counters.get(Counter::CoreStepImages)
            + self.counters.get(Counter::VmInstructions)
    }

    /// Renders the profile as an indented text block (the EXPLAIN view).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "EXPLAIN {} [backend={}]", self.query, self.backend);
        let _ = writeln!(
            out,
            "  tree={} nodes  result={} nodes  steps={}",
            self.tree_size,
            self.result_count,
            self.total_steps()
        );
        let _ = writeln!(
            out,
            "  compiled: query_size={} nfa_states={} formula_size={} ntwa_states={} ntwa_subtests={} vm_instrs={} vm_regs={}",
            self.compiled.query_size,
            self.compiled.nfa_states,
            self.compiled.formula_size,
            self.compiled.ntwa_states,
            self.compiled.ntwa_subtests,
            self.compiled.vm_instrs,
            self.compiled.vm_regs,
        );
        if self.eval_nanos > 0 || self.compile_nanos > 0 {
            let _ = writeln!(
                out,
                "  time: compile={:.1}µs eval={:.1}µs",
                self.compile_nanos as f64 / 1_000.0,
                self.eval_nanos as f64 / 1_000.0
            );
        }
        let active = self.active_counters();
        if active.is_empty() {
            let _ = writeln!(out, "  counters: (none — obs disabled?)");
        } else {
            for (name, value) in active {
                let _ = writeln!(out, "  {name:<24} {value}");
            }
        }
        out
    }

    /// Renders the profile as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, value) in self.counters.iter() {
            counters = counters.field(name, value);
        }
        Json::obj()
            .field("query", self.query.as_str())
            .field("backend", self.backend.as_str())
            .field("tree_size", self.tree_size)
            .field("result_count", self.result_count)
            .field("total_steps", self.total_steps())
            .field("eval_nanos", self.eval_nanos)
            .field("compile_nanos", self.compile_nanos)
            .field("compiled", self.compiled.to_json())
            .field("counters", counters)
    }
}

impl fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryProfile {
        let mut counters = Counters::default();
        counters.set(Counter::ProductConfigs, 12);
        counters.set(Counter::CompiledNfaStates, 5);
        QueryProfile {
            query: "down*[b]".into(),
            backend: "product".into(),
            tree_size: 6,
            result_count: 2,
            eval_nanos: 1500,
            compile_nanos: 300,
            compiled: CompiledSizes {
                query_size: 4,
                nfa_states: 5,
                ..CompiledSizes::default()
            },
            counters,
        }
    }

    #[test]
    fn text_export_lists_active_counters() {
        let text = sample().to_text();
        assert!(text.contains("EXPLAIN down*[b] [backend=product]"));
        assert!(text.contains("product_configs"));
        assert!(text.contains("12"));
        assert!(!text.contains("tc_iterations"), "zero counters omitted");
    }

    #[test]
    fn json_export_parses_and_has_all_counters() {
        let j = sample().to_json().render();
        let parsed = crate::json::parse(&j).unwrap();
        let Json::Obj(fields) = parsed else {
            panic!("not an object")
        };
        let counters = fields
            .iter()
            .find(|(k, _)| k == "counters")
            .map(|(_, v)| v)
            .unwrap();
        let Json::Obj(cs) = counters else {
            panic!("counters not an object")
        };
        assert_eq!(cs.len(), crate::N_COUNTERS, "all counters exported");
    }

    #[test]
    fn total_steps_sums_backend_step_counters() {
        assert_eq!(sample().total_steps(), 12);
    }
}

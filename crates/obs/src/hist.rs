//! Log-bucketed latency histograms.
//!
//! Wall-clock means hide exactly what a serving tier needs to see: the
//! tail. A [`Histogram`] is an HDR-style fixed-size log₂ histogram — 64
//! `u64` buckets, bucket `i` holding every value whose bit length is
//! `i + 1` (so bucket 0 is `{0, 1}`, bucket 9 is `[512, 1024)`, …) —
//! from which p50/p90/p99/p999 are extracted with bounded relative
//! error (a value and its reported percentile always share a bucket,
//! i.e. they agree within a factor of two).
//!
//! Two flavours:
//!
//! * [`Histogram`] — plain owned buckets. Cheap to record into from one
//!   thread, mergeable across threads with [`Histogram::merge`] (the
//!   same drain/merge discipline the counters use: workers record
//!   locally, the aggregator merges bundles). Merging is associative
//!   and commutative, so aggregation order never changes a percentile.
//! * [`AtomicHistogram`] — the same buckets behind relaxed atomics, for
//!   process-lifetime series shared by many threads (the
//!   [`MetricsRegistry`](crate::metrics::MetricsRegistry) stores
//!   these). [`AtomicHistogram::load`] materialises a point-in-time
//!   [`Histogram`] view.
//!
//! Recording is feature-gated like every other probe in this crate:
//! without `enabled`, [`Histogram::record`] and
//! [`AtomicHistogram::record`] are empty inline functions and every
//! view is all-zero.

use crate::json::Json;
use std::sync::atomic::AtomicU64;
#[cfg(feature = "enabled")]
use std::sync::atomic::Ordering;

/// Number of log₂ buckets — one per possible `u64` bit length.
pub const N_BUCKETS: usize = 64;

/// The bucket a value lands in: its bit length minus one (0 for 0).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - (v | 1).leading_zeros() - 1) as usize
}

/// The largest value bucket `i` can hold (`2^(i+1) - 1`, saturating).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// The standard percentile set exported everywhere: p50/p90/p99/p999.
pub const QUANTILES: [(f64, &str); 4] =
    [(0.50, "p50"), (0.90, "p90"), (0.99, "p99"), (0.999, "p999")];

/// A fixed-size log₂ histogram (see the [module docs](self)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value. No-op without the `enabled` feature.
    #[inline(always)]
    pub fn record(&mut self, v: u64) {
        #[cfg(feature = "enabled")]
        {
            self.buckets[bucket_of(v)] += 1;
            self.count += 1;
            self.sum = self.sum.saturating_add(v);
            self.max = self.max.max(v);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = v;
        }
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw bucket counts, index = bit length − 1.
    pub fn buckets(&self) -> &[u64; N_BUCKETS] {
        &self.buckets
    }

    /// Bucket-wise sum — the cross-thread aggregation primitive.
    /// Associative and commutative (up to `sum` saturation).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `p` (clamped to `[0, 1]`): an upper bound
    /// of the bucket holding the `⌈p·count⌉`-th smallest recorded
    /// value, capped at the observed maximum. Guaranteed to land in
    /// the same bucket as the true quantile, and monotone in `p`.
    /// Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// `(name, value)` pairs for the standard [`QUANTILES`] set.
    pub fn quantiles(&self) -> [(&'static str, u64); QUANTILES.len()] {
        QUANTILES.map(|(p, name)| (name, self.percentile(p)))
    }

    /// A JSON summary: count, sum, mean, max, and the standard
    /// percentile set.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .field("count", self.count)
            .field("sum", self.sum)
            .field("mean", self.mean())
            .field("max", self.max);
        for (name, v) in self.quantiles() {
            obj = obj.field(name, v);
        }
        obj
    }
}

/// A [`Histogram`] with relaxed-atomic buckets, shareable across
/// threads without locks (see the [module docs](self)).
///
/// `max` is maintained with a compare-exchange loop; all other slots
/// are plain relaxed adds, so a concurrent [`load`](Self::load) may
/// observe a value in `count` before its bucket (or vice versa) — the
/// skew is at most the handful of in-flight recordings, which is
/// irrelevant for a latency series and avoids any synchronisation on
/// the record path.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

// `[AtomicU64; 64]: Default` doesn't hold (arrays cap at 32), so spell
// it out.
impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. No-op without the `enabled` feature.
    #[inline(always)]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "enabled")]
        {
            self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = v;
        }
    }

    /// A point-in-time owned view (all-zero when recording is
    /// disabled, since nothing ever stores).
    pub fn load(&self) -> Histogram {
        use std::sync::atomic::Ordering::Relaxed;
        Histogram {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Relaxed)),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn percentiles_share_a_bucket_with_the_true_quantile() {
        let mut h = Histogram::new();
        let mut values: Vec<u64> = (0..1000u64).map(|i| i * i % 7919 + 1).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for (p, _) in QUANTILES {
            let rank = ((p * values.len() as f64).ceil() as usize).max(1) - 1;
            let truth = values[rank];
            let got = h.percentile(p);
            assert_eq!(
                bucket_of(truth),
                bucket_of(got),
                "p{p}: true {truth} vs reported {got} in different buckets"
            );
            assert!(got >= truth, "reported percentile below the true quantile");
            assert!(got <= h.max());
        }
    }

    #[test]
    fn percentile_edge_cases() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0, "empty histogram");
        h.record(42);
        assert_eq!(h.percentile(0.0), 42);
        assert_eq!(h.percentile(1.0), 42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 42.0);
    }

    #[test]
    fn merge_is_bucketwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 100, 10_000] {
            a.record(v);
        }
        for v in [5u64, 1_000_000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.max(), 1_000_000);
        let mut both = Histogram::new();
        for v in [1u64, 100, 10_000, 5, 1_000_000] {
            both.record(v);
        }
        assert_eq!(merged, both, "merge equals recording the union");
    }

    #[test]
    fn atomic_histogram_matches_owned() {
        let atomic = AtomicHistogram::new();
        let mut owned = Histogram::new();
        for v in [3u64, 17, 17, 250_000] {
            atomic.record(v);
            owned.record(v);
        }
        assert_eq!(atomic.load(), owned);
    }

    #[test]
    fn json_summary_has_the_standard_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let rendered = h.to_json().render();
        for key in ["count", "mean", "max", "p50", "p90", "p99", "p999"] {
            assert!(rendered.contains(key), "missing {key} in {rendered}");
        }
    }
}

#[cfg(all(test, not(feature = "enabled")))]
mod disabled_tests {
    use super::*;

    #[test]
    fn disabled_recording_is_silent() {
        let mut h = Histogram::new();
        h.record(42);
        assert!(h.is_empty());
        let a = AtomicHistogram::new();
        a.record(42);
        assert!(a.load().is_empty());
    }
}

//! Concurrency and property tests for the cross-thread accounting
//! protocol: the counter drain/merge handshake hammered from many
//! threads with exact expected totals, and the histogram laws the
//! serving tier leans on (merge associativity/commutativity, percentile
//! monotonicity and bucket agreement with the true quantile).
//!
//! Everything here exercises *recording*, which compiles to a no-op
//! without the `enabled` feature — hence the crate-level gate.
#![cfg(feature = "enabled")]

use std::sync::mpsc;
use twx_obs::{Counter, Counters, Histogram};

/// Deterministic 64-bit generator (SplitMix64) so the property tests
/// replay identically; no rand crate in this workspace.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

const THREADS: u64 = 8;
const ROUNDS: u64 = 200;

/// Eight workers each record a known quantity, drain, and ship the
/// bundle through a channel; the collector merges every bundle locally
/// and the totals must be *exact* — nothing lost, nothing double
/// counted, and the workers' thread-local slots end at zero.
#[test]
fn eight_thread_drain_and_merge_accounts_exactly() {
    let (tx, rx) = mpsc::channel::<Counters>();
    let before = twx_obs::snapshot();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let tx = tx.clone();
            s.spawn(move || {
                for r in 0..ROUNDS {
                    twx_obs::add(Counter::TwaSteps, t + 1);
                    twx_obs::incr(Counter::ProductConfigs);
                    if r % 2 == 0 {
                        // alternate the two worker-side drain shapes
                        tx.send(twx_obs::drain()).unwrap();
                    } else {
                        let mut acc = Counters::default();
                        twx_obs::drain_into(&mut acc);
                        tx.send(acc).unwrap();
                    }
                }
                // every round drained: the thread ends empty
                assert!(twx_obs::drain().is_zero(), "worker slots not empty");
            });
        }
        drop(tx);
        for bundle in rx {
            twx_obs::merge_local(&bundle);
        }
    });
    let total = twx_obs::delta_since(&before);
    // sum over t of ROUNDS*(t+1) = ROUNDS * THREADS*(THREADS+1)/2
    let expected_steps = ROUNDS * THREADS * (THREADS + 1) / 2;
    assert_eq!(total.get(Counter::TwaSteps), expected_steps);
    assert_eq!(total.get(Counter::ProductConfigs), THREADS * ROUNDS);
}

/// Partial drains interleave with live recording: `drain_into` one
/// accumulator per worker, with recordings before and after the drain,
/// and the (shipped + still-local) totals must cover every recording.
#[test]
fn drain_into_accumulates_across_rounds_without_loss() {
    let (tx, rx) = mpsc::channel::<Counters>();
    let before = twx_obs::snapshot();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let tx = tx.clone();
            s.spawn(move || {
                let mut shipped = Counters::default();
                for _ in 0..ROUNDS {
                    twx_obs::add(Counter::TcEdgeTests, 3);
                    twx_obs::drain_into(&mut shipped);
                    // recorded after the drain: must ride the next one
                    twx_obs::add(Counter::TcEdgeTests, 2);
                }
                twx_obs::drain_into(&mut shipped);
                tx.send(shipped).unwrap();
            });
        }
        drop(tx);
        for bundle in rx {
            twx_obs::merge_local(&bundle);
        }
    });
    let total = twx_obs::delta_since(&before);
    assert_eq!(total.get(Counter::TcEdgeTests), THREADS * ROUNDS * 5);
}

fn random_histogram(rng: &mut Rng, n: usize) -> Histogram {
    let mut h = Histogram::default();
    for _ in 0..n {
        // span the full bucket range: random bit-lengths, not just
        // uniform u64s (which would always land in the top buckets)
        let bits = rng.next() % 64;
        h.record(rng.next() >> bits);
    }
    h
}

/// Merge is associative and commutative: any grouping and order of
/// per-thread histograms yields the identical distribution.
#[test]
fn histogram_merge_is_associative_and_commutative() {
    let mut rng = Rng(0x5eed);
    for _ in 0..50 {
        let a = random_histogram(&mut rng, 40);
        let b = random_histogram(&mut rng, 17);
        let c = random_histogram(&mut rng, 63);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);

        assert_eq!(ab_c, a_bc, "(a·b)·c != a·(b·c)");
        assert_eq!(ab_c, cba, "merge is not commutative");
    }
}

/// `percentile` is monotone in `p`, bounded by the observed max, and
/// lands in the same log₂ bucket as the true (sorted-order) quantile.
#[test]
fn percentiles_are_monotone_and_bucket_exact() {
    let mut rng = Rng(0x1157);
    for round in 0..50 {
        let n = 1 + (rng.next() % 400) as usize;
        let mut values = Vec::with_capacity(n);
        let mut h = Histogram::default();
        for _ in 0..n {
            let v = rng.next() >> (rng.next() % 64);
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();

        let mut prev = 0u64;
        for p in [0.0, 0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0] {
            let got = h.percentile(p);
            assert!(
                got >= prev,
                "round {round}: percentile not monotone at p={p}"
            );
            assert!(
                got <= h.max(),
                "round {round}: percentile above max at p={p}"
            );
            prev = got;

            // same-bucket-as-true-quantile: compare log₂ buckets
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            let truth = values[rank - 1];
            assert_eq!(
                twx_obs::hist::bucket_of(got),
                twx_obs::hist::bucket_of(truth),
                "round {round}: p={p} estimate {got} not in the bucket of true quantile {truth}"
            );
        }
        assert_eq!(h.percentile(1.0), h.max(), "p100 is the observed max");
    }
}

/// The atomic histogram under 8-thread fire: the loaded view must agree
/// exactly with a single-threaded histogram over the same values.
#[test]
fn atomic_histogram_matches_sequential_under_contention() {
    let atomic = twx_obs::AtomicHistogram::new();
    let mut expected = Histogram::default();
    // values below 2^48 so the total fits u64: the atomic sum is a
    // relaxed fetch_add (wrapping), the sequential sum saturates, and
    // the two only agree while nothing overflows
    let per_thread: Vec<Vec<u64>> = (0..THREADS)
        .map(|t| {
            let mut rng = Rng(t * 7 + 1);
            (0..500)
                .map(|_| rng.next() >> (16 + rng.next() % 48))
                .collect()
        })
        .collect();
    for vs in &per_thread {
        for &v in vs {
            expected.record(v);
        }
    }
    std::thread::scope(|s| {
        for vs in &per_thread {
            let atomic = &atomic;
            s.spawn(move || {
                for &v in vs {
                    atomic.record(v);
                }
            });
        }
    });
    assert_eq!(atomic.load(), expected);
}

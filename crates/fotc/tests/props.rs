//! Property-based tests for FO(MTC): logical laws of the model checker,
//! NNF invariants, TC fixpoint characterisation.

use proptest::prelude::*;
use twx_fotc::ast::Formula;
use twx_fotc::eval::{eval_binary, eval_unary};
use twx_fotc::nnf::{is_nnf, to_nnf};
use twx_xtree::generate::from_parent_vec;
use twx_xtree::{Label, Tree};

fn arb_tree(max_n: usize) -> impl Strategy<Value = Tree> {
    (1..=max_n).prop_flat_map(|n| {
        let parents = (1..n).map(|i| 0..i as u32).collect::<Vec<_>>().prop_map(|mut ps| {
            ps.insert(0, 0);
            ps
        });
        let labels = proptest::collection::vec(0u32..2, n);
        (parents, labels).prop_map(|(ps, ls)| {
            let ls: Vec<Label> = ls.into_iter().map(Label).collect();
            from_parent_vec(&ps, &ls)
        })
    })
}

/// Formulas with free variables ⊆ {0} (unary), bound vars from 1.
fn arb_unary() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0u32..2).prop_map(|l| Formula::Label(Label(l), 0)),
        Just(Formula::Eq(0, 0)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.and(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.or(g)),
            // ∃1. child(0,1) ∧ shifted — keep it simple: guard on a child
            inner
                .clone()
                .prop_map(|f| Formula::Child(0, 1).and(rename_0_to(&f, 1)).exists(1)),
            // a TC reachability guard
            inner.clone().prop_map(|f| {
                Formula::Child(2, 3)
                    .tc(2, 3, 0, 1)
                    .and(rename_0_to(&f, 1))
                    .exists(1)
            }),
        ]
    })
}

/// Renames free variable 0 to `v` (formulas built above never bind 0).
fn rename_0_to(f: &Formula, v: u32) -> Formula {
    match f {
        Formula::Label(l, x) => Formula::Label(*l, if *x == 0 { v } else { *x }),
        Formula::Eq(a, b) => Formula::Eq(
            if *a == 0 { v } else { *a },
            if *b == 0 { v } else { *b },
        ),
        Formula::Child(a, b) => Formula::Child(
            if *a == 0 { v } else { *a },
            if *b == 0 { v } else { *b },
        ),
        Formula::NextSib(a, b) => Formula::NextSib(
            if *a == 0 { v } else { *a },
            if *b == 0 { v } else { *b },
        ),
        Formula::Not(g) => rename_0_to(g, v).not(),
        Formula::And(g, h) => rename_0_to(g, v).and(rename_0_to(h, v)),
        Formula::Or(g, h) => rename_0_to(g, v).or(rename_0_to(h, v)),
        Formula::Exists(x, g) => rename_0_to(g, v).exists(*x),
        Formula::Forall(x, g) => rename_0_to(g, v).forall(*x),
        Formula::Tc { x, y, phi, from, to } => rename_0_to(phi, v).tc(
            *x,
            *y,
            if *from == 0 { v } else { *from },
            if *to == 0 { v } else { *to },
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Excluded middle and non-contradiction hold pointwise.
    #[test]
    fn boolean_laws(f in arb_unary(), t in arb_tree(7)) {
        let pos = eval_unary(&t, &f, 0);
        let neg = eval_unary(&t, &f.clone().not(), 0);
        let mut union = pos.clone();
        union.union_with(&neg);
        prop_assert_eq!(union.count(), t.len());
        let mut inter = pos;
        inter.intersect_with(&neg);
        prop_assert!(inter.is_empty());
    }

    /// NNF preserves semantics and produces NNF.
    #[test]
    fn nnf_correct(f in arb_unary(), t in arb_tree(6)) {
        let n = to_nnf(&f);
        prop_assert!(is_nnf(&n));
        prop_assert_eq!(eval_unary(&t, &f, 0), eval_unary(&t, &n, 0));
    }

    /// NNF preserves free variables.
    #[test]
    fn nnf_preserves_free_vars(f in arb_unary()) {
        prop_assert_eq!(to_nnf(&f).free_vars(), f.free_vars());
    }

    /// TC is the least reflexive-transitive fixpoint: TC(φ) = TC(TC(φ))
    /// and φ ⊆ TC(φ) (as relations), and TC is monotone in the step.
    #[test]
    fn tc_fixpoint_laws(t in arb_tree(6)) {
        // step relation: child
        let step = Formula::Child(0, 1);
        let tc = step.clone().tc(0, 1, 2, 3);
        let rel_tc = eval_binary(&t, &tc, 2, 3);
        // idempotence: closing the closure changes nothing
        let tc_tc = tc.clone().tc(2, 3, 4, 5);
        prop_assert_eq!(eval_binary(&t, &tc_tc, 4, 5), rel_tc.clone());
        // extensivity: step ⊆ closure
        let rel_step = eval_binary(&t, &step, 0, 1);
        for x in t.nodes() {
            for y in t.nodes() {
                if rel_step.get(x, y) {
                    prop_assert!(rel_tc.get(x, y));
                }
                if x == y {
                    prop_assert!(rel_tc.get(x, y)); // reflexivity
                }
            }
        }
    }

    /// Quantifier dualities at the evaluator level.
    #[test]
    fn quantifier_duality(f in arb_unary(), t in arb_tree(6)) {
        // ∃x.¬f ≡ ¬∀x.f, as sentences over the one free var closed here
        let ex = rename_0_to(&f, 9).not().exists(9);
        let fa = rename_0_to(&f, 9).forall(9).not();
        // both are 0-ary given f's frees were {0}; close by renaming
        prop_assert_eq!(
            twx_fotc::eval_sentence(&t, &ex),
            twx_fotc::eval_sentence(&t, &fa)
        );
    }
}

//! Property-based tests for FO(MTC): logical laws of the model checker,
//! NNF invariants, TC fixpoint characterisation.
//!
//! Instances come from a small recursive formula sampler driven by the
//! deterministic in-tree PRNG (no `proptest`, offline build).

use twx_fotc::ast::Formula;
use twx_fotc::eval::{eval_binary, eval_unary};
use twx_fotc::nnf::{is_nnf, to_nnf};
use twx_xtree::generate::from_parent_vec;
use twx_xtree::rng::{Rng, SplitMix64};
use twx_xtree::{Label, Tree};

fn rand_tree(rng: &mut SplitMix64, max_n: usize) -> Tree {
    let n = rng.gen_range(1..max_n + 1);
    let mut parents = vec![0u32; n];
    for (i, p) in parents.iter_mut().enumerate().skip(1) {
        *p = rng.gen_range(0..i as u32);
    }
    let ls: Vec<Label> = (0..n).map(|_| Label(rng.gen_range(0..2u32))).collect();
    from_parent_vec(&parents, &ls)
}

/// Formulas with free variables ⊆ {0} (unary), bound vars from 1.
///
/// Mirrors the shapes of the original proptest strategy: atoms on
/// variable 0, boolean combinations, a child-guarded ∃, and a TC
/// reachability guard.
fn rand_unary(rng: &mut SplitMix64, depth: usize) -> Formula {
    if depth == 0 {
        return match rng.gen_range(0..3) {
            0 => Formula::Label(Label(0), 0),
            1 => Formula::Label(Label(1), 0),
            _ => Formula::Eq(0, 0),
        };
    }
    match rng.gen_range(0..6) {
        0 => rand_unary(rng, depth - 1).not(),
        1 => rand_unary(rng, depth - 1).and(rand_unary(rng, depth - 1)),
        2 => rand_unary(rng, depth - 1).or(rand_unary(rng, depth - 1)),
        // ∃1. child(0,1) ∧ shifted — guard on a child
        3 => Formula::Child(0, 1)
            .and(rename_0_to(&rand_unary(rng, depth - 1), 1))
            .exists(1),
        // a TC reachability guard
        4 => Formula::Child(2, 3)
            .tc(2, 3, 0, 1)
            .and(rename_0_to(&rand_unary(rng, depth - 1), 1))
            .exists(1),
        _ => rand_unary(rng, depth - 1),
    }
}

/// Renames free variable 0 to `v` (formulas built above never bind 0).
fn rename_0_to(f: &Formula, v: u32) -> Formula {
    match f {
        Formula::Label(l, x) => Formula::Label(*l, if *x == 0 { v } else { *x }),
        Formula::Eq(a, b) => {
            Formula::Eq(if *a == 0 { v } else { *a }, if *b == 0 { v } else { *b })
        }
        Formula::Child(a, b) => {
            Formula::Child(if *a == 0 { v } else { *a }, if *b == 0 { v } else { *b })
        }
        Formula::NextSib(a, b) => {
            Formula::NextSib(if *a == 0 { v } else { *a }, if *b == 0 { v } else { *b })
        }
        Formula::Not(g) => rename_0_to(g, v).not(),
        Formula::And(g, h) => rename_0_to(g, v).and(rename_0_to(h, v)),
        Formula::Or(g, h) => rename_0_to(g, v).or(rename_0_to(h, v)),
        Formula::Exists(x, g) => rename_0_to(g, v).exists(*x),
        Formula::Forall(x, g) => rename_0_to(g, v).forall(*x),
        Formula::Tc {
            x,
            y,
            phi,
            from,
            to,
        } => rename_0_to(phi, v).tc(
            *x,
            *y,
            if *from == 0 { v } else { *from },
            if *to == 0 { v } else { *to },
        ),
    }
}

const ROUNDS: usize = 48;

/// Excluded middle and non-contradiction hold pointwise.
#[test]
fn boolean_laws() {
    let mut rng = SplitMix64::seed_from_u64(0xb001);
    for _ in 0..ROUNDS {
        let f = rand_unary(&mut rng, 3);
        let t = rand_tree(&mut rng, 7);
        let pos = eval_unary(&t, &f, 0);
        let neg = eval_unary(&t, &f.clone().not(), 0);
        let mut union = pos.clone();
        union.union_with(&neg);
        assert_eq!(union.count(), t.len());
        let mut inter = pos;
        inter.intersect_with(&neg);
        assert!(inter.is_empty());
    }
}

/// NNF preserves semantics and produces NNF.
#[test]
fn nnf_correct() {
    let mut rng = SplitMix64::seed_from_u64(0x27f1);
    for _ in 0..ROUNDS {
        let f = rand_unary(&mut rng, 3);
        let t = rand_tree(&mut rng, 6);
        let n = to_nnf(&f);
        assert!(is_nnf(&n));
        assert_eq!(eval_unary(&t, &f, 0), eval_unary(&t, &n, 0), "{f:?}");
    }
}

/// NNF preserves free variables.
#[test]
fn nnf_preserves_free_vars() {
    let mut rng = SplitMix64::seed_from_u64(0x27f2);
    for _ in 0..200 {
        let f = rand_unary(&mut rng, 4);
        assert_eq!(to_nnf(&f).free_vars(), f.free_vars(), "{f:?}");
    }
}

/// TC is the least reflexive-transitive fixpoint: TC(φ) = TC(TC(φ))
/// and φ ⊆ TC(φ) (as relations), and TC is reflexive.
#[test]
fn tc_fixpoint_laws() {
    let mut rng = SplitMix64::seed_from_u64(0x7cf1);
    for _ in 0..ROUNDS {
        let t = rand_tree(&mut rng, 6);
        // step relation: child
        let step = Formula::Child(0, 1);
        let tc = step.clone().tc(0, 1, 2, 3);
        let rel_tc = eval_binary(&t, &tc, 2, 3);
        // idempotence: closing the closure changes nothing
        let tc_tc = tc.clone().tc(2, 3, 4, 5);
        assert_eq!(eval_binary(&t, &tc_tc, 4, 5), rel_tc.clone());
        // extensivity: step ⊆ closure
        let rel_step = eval_binary(&t, &step, 0, 1);
        for x in t.nodes() {
            for y in t.nodes() {
                if rel_step.get(x, y) {
                    assert!(rel_tc.get(x, y));
                }
                if x == y {
                    assert!(rel_tc.get(x, y)); // reflexivity
                }
            }
        }
    }
}

/// Quantifier dualities at the evaluator level.
#[test]
fn quantifier_duality() {
    let mut rng = SplitMix64::seed_from_u64(0x40a1);
    for _ in 0..ROUNDS {
        let f = rand_unary(&mut rng, 3);
        let t = rand_tree(&mut rng, 6);
        // ∃x.¬f ≡ ¬∀x.f, as sentences over the one free var closed here
        let ex = rename_0_to(&f, 9).not().exists(9);
        let fa = rename_0_to(&f, 9).forall(9).not();
        assert_eq!(
            twx_fotc::eval_sentence(&t, &ex),
            twx_fotc::eval_sentence(&t, &fa),
            "{f:?}"
        );
    }
}

//! FO(MTC) abstract syntax.

use std::collections::BTreeSet;
use twx_xtree::Label;

/// A first-order variable (a small integer name).
pub type Var = u32;

/// An FO(MTC) formula over the tree signature.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// `P_a(x)` — node `x` carries label `a`.
    Label(Label, Var),
    /// `x = y`.
    Eq(Var, Var),
    /// `child(x, y)` — `y` is a child of `x`.
    Child(Var, Var),
    /// `nextsib(x, y)` — `y` is the next sibling of `x`.
    NextSib(Var, Var),
    /// `¬φ`.
    Not(Box<Formula>),
    /// `φ ∧ ψ`.
    And(Box<Formula>, Box<Formula>),
    /// `φ ∨ ψ`.
    Or(Box<Formula>, Box<Formula>),
    /// `∃x. φ`.
    Exists(Var, Box<Formula>),
    /// `∀x. φ`.
    Forall(Var, Box<Formula>),
    /// `[TC_{x,y} φ](u, v)` — `(u, v)` is in the reflexive-transitive
    /// closure of `{(a, b) | φ[x ↦ a, y ↦ b]}`. Free variables of `φ` other
    /// than `x, y` are parameters.
    Tc {
        /// The closed variable pair: source.
        x: Var,
        /// The closed variable pair: target.
        y: Var,
        /// The binary step formula.
        phi: Box<Formula>,
        /// Applied-to source term.
        from: Var,
        /// Applied-to target term.
        to: Var,
    },
}

impl Formula {
    /// `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `self ∧ other`.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// `self → other` as sugar.
    pub fn implies(self, other: Formula) -> Formula {
        self.not().or(other)
    }

    /// `∃x. self`.
    pub fn exists(self, x: Var) -> Formula {
        Formula::Exists(x, Box::new(self))
    }

    /// `∀x. self`.
    pub fn forall(self, x: Var) -> Formula {
        Formula::Forall(x, Box::new(self))
    }

    /// `[TC_{x,y} self](from, to)`.
    pub fn tc(self, x: Var, y: Var, from: Var, to: Var) -> Formula {
        Formula::Tc {
            x,
            y,
            phi: Box::new(self),
            from,
            to,
        }
    }

    /// `descendant-or-self(u, v)` as sugar: `[TC_{x,y} child(x,y)](u,v)`.
    pub fn descendant_or_self(u: Var, v: Var, scratch_x: Var, scratch_y: Var) -> Formula {
        Formula::Child(scratch_x, scratch_y).tc(scratch_x, scratch_y, u, v)
    }

    /// `root(x)` as sugar: `¬∃z. child(z, x)`.
    pub fn root(x: Var, scratch: Var) -> Formula {
        Formula::Child(scratch, x).exists(scratch).not()
    }

    /// `leaf(x)` as sugar: `¬∃z. child(x, z)`.
    pub fn leaf(x: Var, scratch: Var) -> Formula {
        Formula::Child(x, scratch).exists(scratch).not()
    }

    /// The set of free variables.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut out);
        out
    }

    fn collect_free(&self, out: &mut BTreeSet<Var>) {
        match self {
            Formula::Label(_, x) => {
                out.insert(*x);
            }
            Formula::Eq(x, y) | Formula::Child(x, y) | Formula::NextSib(x, y) => {
                out.insert(*x);
                out.insert(*y);
            }
            Formula::Not(f) => f.collect_free(out),
            Formula::And(f, g) | Formula::Or(f, g) => {
                f.collect_free(out);
                g.collect_free(out);
            }
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                let mut inner = BTreeSet::new();
                f.collect_free(&mut inner);
                inner.remove(v);
                out.extend(inner);
            }
            Formula::Tc {
                x,
                y,
                phi,
                from,
                to,
            } => {
                let mut inner = BTreeSet::new();
                phi.collect_free(&mut inner);
                inner.remove(x);
                inner.remove(y);
                out.extend(inner);
                out.insert(*from);
                out.insert(*to);
            }
        }
    }

    /// Syntactic size (number of AST nodes).
    pub fn size(&self) -> usize {
        match self {
            Formula::Label(..) | Formula::Eq(..) | Formula::Child(..) | Formula::NextSib(..) => 1,
            Formula::Not(f) | Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.size(),
            Formula::And(f, g) | Formula::Or(f, g) => 1 + f.size() + g.size(),
            Formula::Tc { phi, .. } => 1 + phi.size(),
        }
    }

    /// Maximum nesting depth of `TC` operators.
    pub fn tc_depth(&self) -> usize {
        match self {
            Formula::Label(..) | Formula::Eq(..) | Formula::Child(..) | Formula::NextSib(..) => 0,
            Formula::Not(f) | Formula::Exists(_, f) | Formula::Forall(_, f) => f.tc_depth(),
            Formula::And(f, g) | Formula::Or(f, g) => f.tc_depth().max(g.tc_depth()),
            Formula::Tc { phi, .. } => 1 + phi.tc_depth(),
        }
    }

    /// The largest variable name occurring (bound or free), for allocating
    /// fresh variables.
    pub fn max_var(&self) -> Var {
        match self {
            Formula::Label(_, x) => *x,
            Formula::Eq(x, y) | Formula::Child(x, y) | Formula::NextSib(x, y) => (*x).max(*y),
            Formula::Not(f) => f.max_var(),
            Formula::And(f, g) | Formula::Or(f, g) => f.max_var().max(g.max_var()),
            Formula::Exists(v, f) | Formula::Forall(v, f) => (*v).max(f.max_var()),
            Formula::Tc {
                x,
                y,
                phi,
                from,
                to,
            } => (*x).max(*y).max(*from).max(*to).max(phi.max_var()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_respect_binders() {
        // ∃1. child(0,1) ∧ P_a(2)
        let f = Formula::Child(0, 1)
            .exists(1)
            .and(Formula::Label(Label(0), 2));
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), [0, 2]);
    }

    #[test]
    fn tc_binds_its_pair_but_not_endpoints() {
        // [TC_{0,1} child(0,1) ∧ P(2)](3, 4)
        let f = Formula::Child(0, 1)
            .and(Formula::Label(Label(0), 2))
            .tc(0, 1, 3, 4);
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), [2, 3, 4]);
        assert_eq!(f.tc_depth(), 1);
        assert_eq!(f.max_var(), 4);
    }

    #[test]
    fn sugar_builders() {
        let d = Formula::descendant_or_self(0, 1, 8, 9);
        assert_eq!(d.free_vars().into_iter().collect::<Vec<_>>(), [0, 1]);
        let r = Formula::root(0, 9);
        assert_eq!(r.free_vars().into_iter().collect::<Vec<_>>(), [0]);
        assert_eq!(
            Formula::leaf(3, 9)
                .free_vars()
                .into_iter()
                .collect::<Vec<_>>(),
            [3]
        );
    }
}

//! # twx-fotc — first-order logic with monadic transitive closure over trees
//!
//! The logical yardstick of the paper: FO(MTC), first-order logic over the
//! signature `{ child(x,y), nextsib(x,y), P_a(x) (a ∈ Σ), x = y }` of
//! sibling-ordered labelled trees, extended with the *monadic* transitive
//! closure operator
//!
//! ```text
//! [TC_{x,y} φ(x, y, z̄)](u, v)
//! ```
//!
//! which holds when `(u, v)` is in the **reflexive-transitive** closure of
//! the binary relation `{(a, b) | φ(a, b, z̄)}` (parameters `z̄` held
//! fixed). "Monadic" means the closed relation is binary (closure of pairs,
//! not of longer tuples); over trees this logic is denoted FO* in the paper
//! and shown equal to Regular XPath(W) and to nested tree walking automata,
//! and strictly weaker than MSO.
//!
//! This crate provides the syntax ([`ast`]), a model checker with on-demand
//! TC search ([`eval`]), a printer ([`mod@print`]), and formula generators
//! ([`generate`]). The translations connecting FO(MTC) to the other two
//! formalisms live in `twx-core`.

pub mod ast;
pub mod derived;
pub mod eval;
pub mod generate;
pub mod nnf;
pub mod print;

pub use ast::{Formula, Var};
pub use eval::{eval_binary, eval_sentence, eval_unary, Assignment};

//! Random FO(MTC) formula generators (used by differential tests of the
//! FO ↔ XPath translations).

use crate::ast::{Formula, Var};
use twx_xtree::rng::Rng;
use twx_xtree::Label;

/// Configuration for random formula generation.
#[derive(Clone, Debug)]
pub struct FGenConfig {
    /// Number of labels for atomic label tests.
    pub labels: usize,
    /// Whether quantifiers may appear.
    pub quantifiers: bool,
    /// Whether TC may appear.
    pub tc: bool,
}

impl Default for FGenConfig {
    fn default() -> Self {
        FGenConfig {
            labels: 2,
            quantifiers: true,
            tc: true,
        }
    }
}

/// Generates a random formula whose free variables are drawn from
/// `free` (bound variables are allocated above `next_var`).
pub fn random_formula<R: Rng>(
    cfg: &FGenConfig,
    depth: usize,
    free: &[Var],
    next_var: Var,
    rng: &mut R,
) -> Formula {
    let pick = |rng: &mut R| free[rng.gen_range(0..free.len())];
    if depth == 0 || free.is_empty() {
        // need at least one variable in scope for an atom; callers always
        // provide one
        let x = pick(rng);
        let y = pick(rng);
        return match rng.gen_range(0..4) {
            0 => Formula::Label(Label(rng.gen_range(0..cfg.labels) as u32), x),
            1 => Formula::Eq(x, y),
            2 => Formula::Child(x, y),
            _ => Formula::NextSib(x, y),
        };
    }
    let choice = rng.gen_range(0..10);
    match choice {
        0 | 1 => {
            let x = pick(rng);
            Formula::Label(Label(rng.gen_range(0..cfg.labels) as u32), x)
        }
        2 => Formula::Child(pick(rng), pick(rng)),
        3 => random_formula(cfg, depth - 1, free, next_var, rng).not(),
        4 => random_formula(cfg, depth - 1, free, next_var, rng).and(random_formula(
            cfg,
            depth - 1,
            free,
            next_var,
            rng,
        )),
        5 => random_formula(cfg, depth - 1, free, next_var, rng).or(random_formula(
            cfg,
            depth - 1,
            free,
            next_var,
            rng,
        )),
        6 | 7 if cfg.quantifiers => {
            let v = next_var;
            let mut scope: Vec<Var> = free.to_vec();
            scope.push(v);
            let body = random_formula(cfg, depth - 1, &scope, next_var + 1, rng);
            if choice == 6 {
                body.exists(v)
            } else {
                body.forall(v)
            }
        }
        8 | 9 if cfg.tc => {
            let x = next_var;
            let y = next_var + 1;
            let mut scope: Vec<Var> = free.to_vec();
            scope.push(x);
            scope.push(y);
            let step = random_formula(cfg, depth - 1, &scope, next_var + 2, rng);
            step.tc(x, y, pick(rng), pick(rng))
        }
        _ => Formula::NextSib(pick(rng), pick(rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::rng::SplitMix64 as StdRng;

    #[test]
    fn free_vars_stay_in_scope() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = FGenConfig::default();
        for _ in 0..100 {
            let f = random_formula(&cfg, 4, &[0, 1], 2, &mut rng);
            for v in f.free_vars() {
                assert!(v < 2, "leaked bound variable x{v} in {f:?}");
            }
        }
    }

    #[test]
    fn flags_respected() {
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = FGenConfig {
            tc: false,
            quantifiers: false,
            ..FGenConfig::default()
        };
        for _ in 0..100 {
            let f = random_formula(&cfg, 5, &[0], 1, &mut rng);
            assert_eq!(f.tc_depth(), 0, "{f:?}");
        }
    }

    #[test]
    fn generated_formulas_evaluate() {
        use crate::eval::eval_unary;
        use twx_xtree::generate::{random_tree, Shape};
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = FGenConfig::default();
        for round in 0..20 {
            let t = random_tree(Shape::Recursive, 1 + round % 6, 2, &mut rng);
            let f = random_formula(&cfg, 3, &[0], 1, &mut rng);
            let _ = eval_unary(&t, &f, 0);
        }
    }
}

//! Formula pretty printing (for documentation, examples and debugging; the
//! FO side of the workspace is constructed programmatically or by
//! translation, so there is no parser).

use crate::ast::Formula;
use std::fmt::Write;
use twx_xtree::{Alphabet, Catalog};

/// Renders a formula in a conventional mathematical ASCII notation.
pub fn formula_to_string(f: &Formula, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    write_formula(f, alphabet, 0, &mut out);
    out
}

/// Renders a formula resolving label names through a shared [`Catalog`]
/// (the names seen are those interned at call time).
pub fn formula_to_string_catalog(f: &Formula, catalog: &Catalog) -> String {
    catalog.with_read(|ab| formula_to_string(f, ab))
}

/// Precedence: 0 = or, 1 = and, 2 = unary/atom.
fn write_formula(f: &Formula, ab: &Alphabet, prec: u8, out: &mut String) {
    match f {
        Formula::Label(l, x) => {
            let _ = write!(out, "P_{}(x{})", ab.name(*l), x);
        }
        Formula::Eq(x, y) => {
            let _ = write!(out, "x{x} = x{y}");
        }
        Formula::Child(x, y) => {
            let _ = write!(out, "child(x{x}, x{y})");
        }
        Formula::NextSib(x, y) => {
            let _ = write!(out, "nextsib(x{x}, x{y})");
        }
        Formula::Not(g) => {
            out.push('~');
            let needs_parens = matches!(
                **g,
                Formula::Eq(..)
                    | Formula::And(..)
                    | Formula::Or(..)
                    | Formula::Exists(..)
                    | Formula::Forall(..)
            );
            if needs_parens {
                out.push('(');
                write_formula(g, ab, 0, out);
                out.push(')');
            } else {
                write_formula(g, ab, 2, out);
            }
        }
        Formula::And(g, h) => {
            let parens = prec > 1;
            if parens {
                out.push('(');
            }
            write_formula(g, ab, 1, out);
            out.push_str(" & ");
            write_formula(h, ab, 2, out);
            if parens {
                out.push(')');
            }
        }
        Formula::Or(g, h) => {
            let parens = prec > 0;
            if parens {
                out.push('(');
            }
            write_formula(g, ab, 0, out);
            out.push_str(" | ");
            write_formula(h, ab, 1, out);
            if parens {
                out.push(')');
            }
        }
        Formula::Exists(v, g) => {
            let _ = write!(out, "exists x{v}. ");
            write_formula(g, ab, 2, out);
        }
        Formula::Forall(v, g) => {
            let _ = write!(out, "forall x{v}. ");
            write_formula(g, ab, 2, out);
        }
        Formula::Tc {
            x,
            y,
            phi,
            from,
            to,
        } => {
            let _ = write!(out, "[TC_{{x{x},x{y}}} ");
            write_formula(phi, ab, 0, out);
            let _ = write!(out, "](x{from}, x{to})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::Label;

    #[test]
    fn renders_structure() {
        let ab = Alphabet::from_names(["a"]);
        let f = Formula::Child(0, 1)
            .and(Formula::Label(Label(0), 1))
            .tc(0, 1, 2, 3)
            .or(Formula::Eq(2, 3).not());
        let s = formula_to_string(&f, &ab);
        assert_eq!(
            s,
            "[TC_{x0,x1} child(x0, x1) & P_a(x1)](x2, x3) | ~(x2 = x3)"
        );
    }

    #[test]
    fn quantifier_rendering() {
        let ab = Alphabet::new();
        let f = Formula::Child(1, 0).exists(1).not();
        assert_eq!(formula_to_string(&f, &ab), "~(exists x1. child(x1, x0))");
    }
}

//! Negation normal form for FO(MTC).
//!
//! Pushes negations to the atoms (¬∃ → ∀¬, ¬∀ → ∃¬, De Morgan). `TC` is
//! *not* dualised — FO(MTC) is not known to admit a polynomial negation
//! normal form through TC (this asymmetry is one face of the difficulty
//! of the paper's FO(MTC) → NTWA direction) — so negated TC atoms remain
//! as `¬[TC …]` leaves; [`is_nnf`] treats them as literals.

use crate::ast::Formula;

/// Converts `f` to negation normal form.
pub fn to_nnf(f: &Formula) -> Formula {
    nnf(f, false)
}

fn nnf(f: &Formula, negated: bool) -> Formula {
    match f {
        Formula::Label(..) | Formula::Eq(..) | Formula::Child(..) | Formula::NextSib(..) => {
            if negated {
                f.clone().not()
            } else {
                f.clone()
            }
        }
        Formula::Not(g) => nnf(g, !negated),
        Formula::And(g, h) => {
            if negated {
                nnf(g, true).or(nnf(h, true))
            } else {
                nnf(g, false).and(nnf(h, false))
            }
        }
        Formula::Or(g, h) => {
            if negated {
                nnf(g, true).and(nnf(h, true))
            } else {
                nnf(g, false).or(nnf(h, false))
            }
        }
        Formula::Exists(v, g) => {
            if negated {
                nnf(g, true).forall(*v)
            } else {
                nnf(g, false).exists(*v)
            }
        }
        Formula::Forall(v, g) => {
            if negated {
                nnf(g, true).exists(*v)
            } else {
                nnf(g, false).forall(*v)
            }
        }
        Formula::Tc {
            x,
            y,
            phi,
            from,
            to,
        } => {
            // normalise inside the TC step, keep the (possibly negated)
            // TC itself as a literal
            let inner = nnf(phi, false).tc(*x, *y, *from, *to);
            if negated {
                inner.not()
            } else {
                inner
            }
        }
    }
}

/// Whether `f` is in negation normal form (negations only on atoms and
/// TC literals).
pub fn is_nnf(f: &Formula) -> bool {
    match f {
        Formula::Label(..) | Formula::Eq(..) | Formula::Child(..) | Formula::NextSib(..) => true,
        Formula::Not(g) => {
            matches!(
                **g,
                Formula::Label(..)
                    | Formula::Eq(..)
                    | Formula::Child(..)
                    | Formula::NextSib(..)
                    | Formula::Tc { .. }
            ) && if let Formula::Tc { phi, .. } = &**g {
                is_nnf(phi)
            } else {
                true
            }
        }
        Formula::And(g, h) | Formula::Or(g, h) => is_nnf(g) && is_nnf(h),
        Formula::Exists(_, g) | Formula::Forall(_, g) => is_nnf(g),
        Formula::Tc { phi, .. } => is_nnf(phi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_unary;
    use crate::generate::{random_formula, FGenConfig};
    use twx_xtree::generate::{random_tree, Shape};
    use twx_xtree::rng::SplitMix64 as StdRng;

    #[test]
    fn classic_dualities() {
        // ¬∃x. child(0,x) → ∀x. ¬child(0,x)
        let f = Formula::Child(0, 1).exists(1).not();
        let n = to_nnf(&f);
        assert_eq!(n, Formula::Child(0, 1).not().forall(1));
        assert!(is_nnf(&n));
        // double negation vanishes
        assert_eq!(to_nnf(&Formula::Eq(0, 0).not().not()), Formula::Eq(0, 0));
        // De Morgan
        let f = Formula::Eq(0, 0).and(Formula::Child(0, 0)).not();
        assert_eq!(
            to_nnf(&f),
            Formula::Eq(0, 0).not().or(Formula::Child(0, 0).not())
        );
    }

    #[test]
    fn negated_tc_stays_literal() {
        let tc = Formula::Child(2, 3).tc(2, 3, 0, 1);
        let f = tc.clone().not().not().not();
        let n = to_nnf(&f);
        assert_eq!(n, tc.not());
        assert!(is_nnf(&n));
    }

    /// NNF preserves semantics (fuzzed over formulas and trees).
    #[test]
    fn nnf_preserves_semantics() {
        let mut rng = StdRng::seed_from_u64(88);
        let cfg = FGenConfig::default();
        for round in 0..40 {
            let f = random_formula(&cfg, 3, &[0], 1, &mut rng);
            let n = to_nnf(&f);
            assert!(is_nnf(&n), "not NNF: {n:?}");
            let t = random_tree(Shape::Recursive, 1 + round % 7, 2, &mut rng);
            assert_eq!(
                eval_unary(&t, &f, 0),
                eval_unary(&t, &n, 0),
                "semantics changed for {f:?}"
            );
        }
    }

    #[test]
    fn size_at_most_doubles() {
        let mut rng = StdRng::seed_from_u64(89);
        let cfg = FGenConfig::default();
        for _ in 0..60 {
            let f = random_formula(&cfg, 4, &[0, 1], 2, &mut rng);
            let n = to_nnf(&f);
            assert!(n.size() <= 2 * f.size(), "{} vs {}", n.size(), f.size());
        }
    }
}

//! Model checking FO(MTC) over trees.
//!
//! Direct recursive evaluation with an explicit assignment; quantifiers
//! iterate over all nodes (`O(n^k)` in quantifier rank `k` — FO(MTC) model
//! checking is PSPACE-complete in combined complexity, so this evaluator is
//! meant for small-to-medium trees and is the semantic oracle for the
//! translations). `TC` runs a breadth-first search whose edge relation is
//! decided by recursive evaluation on demand.

use crate::ast::{Formula, Var};
use twx_obs::{self as obs, Counter};
use twx_xtree::{BitMatrix, NodeId, NodeSet, Tree};

/// A variable assignment (dense, indexed by variable name).
#[derive(Clone, Debug, Default)]
pub struct Assignment {
    slots: Vec<Option<NodeId>>,
}

impl Assignment {
    /// An empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the value of `v`.
    ///
    /// # Panics
    /// If `v` is unassigned (a free variable not provided by the caller) —
    /// that is an API misuse, not a semantic condition.
    pub fn get(&self, v: Var) -> NodeId {
        self.slots
            .get(v as usize)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("unassigned variable x{v}"))
    }

    /// Sets `v := n`, returning the previous value.
    pub fn set(&mut self, v: Var, n: NodeId) -> Option<NodeId> {
        if self.slots.len() <= v as usize {
            self.slots.resize(v as usize + 1, None);
        }
        self.slots[v as usize].replace(n)
    }

    /// Restores `v` to a previous value (possibly unassigned).
    pub fn restore(&mut self, v: Var, old: Option<NodeId>) {
        if let Some(slot) = self.slots.get_mut(v as usize) {
            *slot = old;
        }
    }
}

/// Evaluates `phi` on `t` under `env`.
pub fn eval(t: &Tree, phi: &Formula, env: &mut Assignment) -> bool {
    obs::incr(Counter::FoEvalSteps);
    match phi {
        Formula::Label(l, x) => t.label(env.get(*x)) == *l,
        Formula::Eq(x, y) => env.get(*x) == env.get(*y),
        Formula::Child(x, y) => t.parent(env.get(*y)) == Some(env.get(*x)),
        Formula::NextSib(x, y) => t.next_sibling(env.get(*x)) == Some(env.get(*y)),
        Formula::Not(f) => !eval(t, f, env),
        Formula::And(f, g) => eval(t, f, env) && eval(t, g, env),
        Formula::Or(f, g) => eval(t, f, env) || eval(t, g, env),
        Formula::Exists(v, f) => t.nodes().any(|n| {
            obs::incr(Counter::FoQuantifierBindings);
            let old = env.set(*v, n);
            let r = eval(t, f, env);
            env.restore(*v, old);
            r
        }),
        Formula::Forall(v, f) => t.nodes().all(|n| {
            obs::incr(Counter::FoQuantifierBindings);
            let old = env.set(*v, n);
            let r = eval(t, f, env);
            env.restore(*v, old);
            r
        }),
        Formula::Tc {
            x,
            y,
            phi,
            from,
            to,
        } => {
            let src = env.get(*from);
            let dst = env.get(*to);
            if src == dst {
                return true; // reflexive closure
            }
            // BFS from src over the φ-relation, edges decided on demand
            let n = t.len();
            let mut seen = NodeSet::singleton(n, src);
            let mut frontier = vec![src];
            while let Some(a) = frontier.pop() {
                obs::incr(Counter::TcIterations);
                for b in t.nodes() {
                    if seen.contains(b) {
                        continue;
                    }
                    obs::incr(Counter::TcEdgeTests);
                    let oldx = env.set(*x, a);
                    let oldy = env.set(*y, b);
                    let step = eval(t, phi, env);
                    env.restore(*y, oldy);
                    env.restore(*x, oldx);
                    if step {
                        if b == dst {
                            return true;
                        }
                        seen.insert(b);
                        frontier.push(b);
                    }
                }
            }
            false
        }
    }
}

/// Evaluates a sentence (no free variables).
///
/// # Panics
/// If `phi` has free variables.
pub fn eval_sentence(t: &Tree, phi: &Formula) -> bool {
    assert!(
        phi.free_vars().is_empty(),
        "eval_sentence on open formula with free vars {:?}",
        phi.free_vars()
    );
    eval(t, phi, &mut Assignment::new())
}

/// Evaluates a formula with one free variable `x` to the set of witnesses.
pub fn eval_unary(t: &Tree, phi: &Formula, x: Var) -> NodeSet {
    let mut env = Assignment::new();
    let mut out = NodeSet::empty(t.len());
    for n in t.nodes() {
        env.set(x, n);
        if eval(t, phi, &mut env) {
            out.insert(n);
        }
    }
    out
}

/// Evaluates a formula with two free variables `(x, y)` to the relation it
/// defines.
pub fn eval_binary(t: &Tree, phi: &Formula, x: Var, y: Var) -> BitMatrix {
    let mut env = Assignment::new();
    let mut out = BitMatrix::empty(t.len());
    for a in t.nodes() {
        env.set(x, a);
        for b in t.nodes() {
            env.set(y, b);
            if eval(t, phi, &mut env) {
                obs::incr(Counter::BitMatrixCells);
                out.set(a, b);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twx_xtree::parse::parse_sexp;
    use twx_xtree::Label;

    /// (a (b d e) (c f))  — ids: a=0 b=1 d=2 e=3 c=4 f=5
    fn sample() -> Tree {
        parse_sexp("(a (b d e) (c f))").unwrap().tree
    }

    fn ids(s: &NodeSet) -> Vec<u32> {
        s.iter().map(|v| v.0).collect()
    }

    #[test]
    fn atomic_relations() {
        let t = sample();
        let child = eval_binary(&t, &Formula::Child(0, 1), 0, 1);
        assert!(child.get(NodeId(0), NodeId(1)));
        assert!(child.get(NodeId(1), NodeId(2)));
        assert!(!child.get(NodeId(0), NodeId(2)));
        assert_eq!(child.count(), 5);
        let sib = eval_binary(&t, &Formula::NextSib(0, 1), 0, 1);
        assert!(sib.get(NodeId(1), NodeId(4)));
        assert!(sib.get(NodeId(2), NodeId(3)));
        assert_eq!(sib.count(), 2);
    }

    #[test]
    fn quantifiers() {
        let t = sample();
        // leaves: ¬∃1. child(0, 1)
        assert_eq!(ids(&eval_unary(&t, &Formula::leaf(0, 1), 0)), [2, 3, 5]);
        // root
        assert_eq!(ids(&eval_unary(&t, &Formula::root(0, 1), 0)), [0]);
        // sentence: every node has at most... there is exactly one root
        let two_roots = Formula::root(0, 2)
            .and(Formula::root(1, 2))
            .and(Formula::Eq(0, 1).not())
            .exists(1)
            .exists(0);
        assert!(!eval_sentence(&t, &two_roots));
    }

    #[test]
    fn tc_is_reflexive_transitive() {
        let t = sample();
        let desc = eval_binary(&t, &Formula::descendant_or_self(0, 1, 8, 9), 0, 1);
        for v in t.nodes() {
            assert!(desc.get(v, v));
        }
        assert!(desc.get(NodeId(0), NodeId(5)));
        assert!(desc.get(NodeId(1), NodeId(3)));
        assert!(!desc.get(NodeId(1), NodeId(5)));
        assert!(!desc.get(NodeId(5), NodeId(0)));
        assert_eq!(desc.count(), 6 + 5 + 3); // refl + child + depth-2 pairs
    }

    #[test]
    fn tc_with_parameters() {
        let t = sample();
        // closure of "child with the same label as node z" — with z := a
        // node labelled 'a', only steps into 'a'-labelled children count.
        // Our sample has distinct labels, so the closure is the diagonal.
        let step = Formula::Child(0, 1).and(Formula::Label(Label(0), 1));
        let rel = eval_binary(&t, &step.tc(0, 1, 2, 3), 2, 3);
        assert_eq!(rel.count(), 6); // only reflexive pairs
    }

    #[test]
    fn tc_guarded_walk() {
        // (a (a (a b)))  labels: a=0..., b
        let t = parse_sexp("(a (a (a b)))").unwrap().tree;
        let a = Label(0);
        // reachability by a-labelled child steps
        let step = Formula::Child(0, 1).and(Formula::Label(a, 1));
        let rel = eval_binary(&t, &step.tc(0, 1, 2, 3), 2, 3);
        assert!(rel.get(NodeId(0), NodeId(2)));
        assert!(!rel.get(NodeId(0), NodeId(3))); // b-node not reachable
    }

    #[test]
    #[should_panic(expected = "unassigned variable")]
    fn unassigned_variable_panics() {
        let t = sample();
        eval(&t, &Formula::Eq(0, 1), &mut Assignment::new());
    }

    #[test]
    #[should_panic(expected = "open formula")]
    fn eval_sentence_rejects_open() {
        let t = sample();
        eval_sentence(&t, &Formula::Eq(0, 1));
    }
}

//! A library of derived tree relations in FO(MTC).
//!
//! The standard derived vocabulary of the tree signature, each built from
//! the atomic relations and `TC` — and each verified against the direct
//! (navigational) computation by this module's tests. These are the
//! building blocks the guarded-fragment translation and the examples use.

use crate::ast::{Formula, Var};

/// Allocates the scratch variables these builders need above `base`.
fn scratch(base: Var, k: Var) -> Var {
    base + k
}

/// `descendant(u, v)`: strict descendant, via `∃z. child(u,z) ∧ z ⟶* v`.
pub fn descendant(u: Var, v: Var, fresh: Var) -> Formula {
    let z = scratch(fresh, 0);
    let a = scratch(fresh, 1);
    let b = scratch(fresh, 2);
    Formula::Child(u, z)
        .and(Formula::Child(a, b).tc(a, b, z, v))
        .exists(z)
}

/// `ancestor(u, v)`: strict ancestor (converse of descendant).
pub fn ancestor(u: Var, v: Var, fresh: Var) -> Formula {
    descendant(v, u, fresh)
}

/// `sibling(u, v)`: same parent, possibly equal.
pub fn sibling(u: Var, v: Var, fresh: Var) -> Formula {
    let p = scratch(fresh, 0);
    Formula::Child(p, u).and(Formula::Child(p, v)).exists(p)
}

/// `before_sibling(u, v)`: `v` is a strictly later sibling of `u`
/// (`nextsib⁺`).
pub fn before_sibling(u: Var, v: Var, fresh: Var) -> Formula {
    let z = scratch(fresh, 0);
    let a = scratch(fresh, 1);
    let b = scratch(fresh, 2);
    // ∃z. nextsib(u,z) ∧ z ⟶* v along nextsib
    Formula::NextSib(u, z)
        .and(Formula::NextSib(a, b).tc(a, b, z, v))
        .exists(z)
}

/// `document_order(u, v)`: `u` strictly precedes `v` in document
/// (preorder) order — `v` is a descendant of `u`, or some
/// ancestor-or-self of `u` has a later sibling that is an
/// ancestor-or-self of `v`.
pub fn document_order(u: Var, v: Var, fresh: Var) -> Formula {
    let x = scratch(fresh, 0);
    let y = scratch(fresh, 1);
    let desc = descendant(u, v, fresh + 2);
    // ∃x ∃y. aos(x, u) ∧ before_sibling(x, y) ∧ aos(y, v)
    let aos_xu = {
        let a = scratch(fresh, 5);
        let b = scratch(fresh, 6);
        Formula::Child(a, b).tc(a, b, x, u)
    };
    let aos_yv = {
        let a = scratch(fresh, 7);
        let b = scratch(fresh, 8);
        Formula::Child(a, b).tc(a, b, y, v)
    };
    let hop = aos_xu
        .and(before_sibling(x, y, fresh + 9))
        .and(aos_yv)
        .exists(y)
        .exists(x);
    desc.or(hop)
}

/// `first_child(u, v)`: `v` is the first child of `u`.
pub fn first_child(u: Var, v: Var, fresh: Var) -> Formula {
    let z = scratch(fresh, 0);
    Formula::Child(u, v).and(Formula::NextSib(z, v).exists(z).not())
}

/// `last_child(u, v)`: `v` is the last child of `u`.
pub fn last_child(u: Var, v: Var, fresh: Var) -> Formula {
    let z = scratch(fresh, 0);
    Formula::Child(u, v).and(Formula::NextSib(v, z).exists(z).not())
}

/// `same_depth(u, v)`: via TC of the "one level apart in lockstep"
/// relation — a genuinely MTC-style definition: the closure of
/// `{((a,b) step): both move one parent up}` cannot be expressed with one
/// TC over pairs, so we use the equivalent: `u` and `v` have the same
/// distance to the root, characterised recursively — here implemented as
/// the symmetric zig-zag `TC` over `parent × parent` encoded through
/// document order is *not* FO(MTC)-expressible uniformly with one binary
/// TC; instead `same_depth` is provided only as the conjunction test
/// "neither is an ancestor of the other and their parents have the same
/// depth" unrolled to a fixed bound — so this helper is **bounded**:
/// correct for trees of depth ≤ `k`.
pub fn same_depth_bounded(u: Var, v: Var, k: u32, fresh: Var) -> Formula {
    // depth 0: both roots
    let both_roots = Formula::root(u, fresh).and(Formula::root(v, fresh + 1));
    if k == 0 {
        return both_roots;
    }
    // or parents at same depth (recursively)
    let pu = fresh + 2;
    let pv = fresh + 3;
    let rec = Formula::Child(pu, u)
        .and(Formula::Child(pv, v))
        .and(same_depth_bounded(pu, pv, k - 1, fresh + 4))
        .exists(pv)
        .exists(pu);
    both_roots.or(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_binary;
    use twx_xtree::generate::{random_tree, Shape};
    use twx_xtree::{NodeId, Tree};

    fn sample() -> Tree {
        twx_xtree::parse::parse_sexp("(a (b d e) (c f))")
            .unwrap()
            .tree
    }

    #[test]
    fn descendant_matches_navigation() {
        let t = sample();
        let rel = eval_binary(&t, &descendant(0, 1, 2), 0, 1);
        for x in t.nodes() {
            for y in t.nodes() {
                assert_eq!(rel.get(x, y), t.is_ancestor(x, y), "({x:?},{y:?})");
            }
        }
    }

    #[test]
    fn sibling_and_order() {
        let t = sample();
        let sib = eval_binary(&t, &sibling(0, 1, 2), 0, 1);
        assert!(sib.get(NodeId(1), NodeId(4)));
        assert!(sib.get(NodeId(1), NodeId(1)));
        assert!(!sib.get(NodeId(0), NodeId(0))); // root has no parent
        assert!(!sib.get(NodeId(2), NodeId(5)));
        let before = eval_binary(&t, &before_sibling(0, 1, 2), 0, 1);
        assert!(before.get(NodeId(1), NodeId(4)));
        assert!(!before.get(NodeId(4), NodeId(1)));
        assert!(!before.get(NodeId(1), NodeId(1)));
    }

    #[test]
    fn document_order_is_id_order() {
        // with preorder ids, document order is exactly id order
        let t = sample();
        let rel = eval_binary(&t, &document_order(0, 1, 2), 0, 1);
        for x in t.nodes() {
            for y in t.nodes() {
                assert_eq!(rel.get(x, y), x.0 < y.0, "({x:?},{y:?})");
            }
        }
    }

    #[test]
    fn document_order_on_random_trees() {
        use twx_xtree::rng::SplitMix64 as StdRng;
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let t = random_tree(Shape::Recursive, 9, 2, &mut rng);
            let rel = eval_binary(&t, &document_order(0, 1, 2), 0, 1);
            for x in t.nodes() {
                for y in t.nodes() {
                    assert_eq!(rel.get(x, y), x.0 < y.0);
                }
            }
        }
    }

    #[test]
    fn first_last_children() {
        let t = sample();
        let first = eval_binary(&t, &first_child(0, 1, 2), 0, 1);
        assert!(first.get(NodeId(0), NodeId(1)));
        assert!(!first.get(NodeId(0), NodeId(4)));
        assert!(first.get(NodeId(1), NodeId(2)));
        let last = eval_binary(&t, &last_child(0, 1, 2), 0, 1);
        assert!(last.get(NodeId(0), NodeId(4)));
        assert!(!last.get(NodeId(0), NodeId(1)));
        assert!(last.get(NodeId(1), NodeId(3)));
    }

    #[test]
    fn same_depth_within_bound() {
        let t = sample();
        let rel = eval_binary(&t, &same_depth_bounded(0, 1, 4, 2), 0, 1);
        for x in t.nodes() {
            for y in t.nodes() {
                assert_eq!(rel.get(x, y), t.depth(x) == t.depth(y), "({x:?},{y:?})");
            }
        }
    }
}

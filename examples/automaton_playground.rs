//! Hand-build a nested tree walking automaton, run it, translate it to
//! Regular XPath(W), and decide properties of the downward fragment with
//! the bottom-up automata substrate.
//!
//! The automaton implements a classic walking idiom: a depth-first search
//! that only descends into children whose subtree does *not* contain a
//! `stop` label — a query whose natural formulation is a guarded walk.
//!
//! ```sh
//! cargo run --example automaton_playground
//! ```

use treewalk::regxpath::print::rpath_to_string;
use treewalk::treeauto::xpath_compile::satisfiable;
use treewalk::twa::eval::{accepts_from, eval_image};
use treewalk::twa::machine::{Move, Ntwa, Scope, TestAtom, Transition, Twa};
use treewalk::xtree::parse::parse_sexp_with;
use treewalk::xtree::serialize::to_sexp;
use treewalk::xtree::{Alphabet, NodeSet};

fn main() {
    let mut ab = Alphabet::from_names(["ok", "stop"]);
    let stop = ab.lookup("stop").unwrap();

    // sub-automaton: "some node of my subtree is labelled stop"
    let sees_stop = Ntwa::flat(Twa {
        n_states: 2,
        initial: 0,
        accepting: vec![1],
        transitions: vec![
            Transition {
                from: 0,
                guard: vec![],
                mv: Move::AnyChild,
                to: 0,
            },
            Transition {
                from: 0,
                guard: vec![TestAtom::Label(stop)],
                mv: Move::Stay,
                to: 1,
            },
        ],
    });

    // top-level: descend only into stop-free territory
    let walker = Ntwa {
        top: Twa {
            n_states: 1,
            initial: 0,
            accepting: vec![0],
            transitions: vec![Transition {
                from: 0,
                guard: vec![TestAtom::Nested {
                    automaton: 0,
                    negated: true,
                    scope: Scope::Subtree,
                }],
                mv: Move::AnyChild,
                to: 0,
            }],
        },
        subs: vec![sees_stop],
    };
    walker.validate().expect("well-formed automaton");

    let t = parse_sexp_with("(ok (ok ok (ok stop)) (ok ok) (stop ok))", &mut ab).unwrap();
    println!("tree: {}", to_sexp(&t, &ab));

    // The guard is tested at the source of each move: from the root
    // (whose subtree contains a stop) the walker may not move at all,
    // while inside a stop-free subtree it roams freely.
    let reach = eval_image(&t, &walker, &NodeSet::singleton(t.len(), t.root()));
    println!(
        "\nreachable from the root (its subtree has a stop): {:?}",
        reach.to_vec()
    );
    let clean = t
        .first_child(t.root())
        .and_then(|c| t.next_sibling(c))
        .unwrap();
    let reach = eval_image(&t, &walker, &NodeSet::singleton(t.len(), clean));
    println!(
        "reachable from node {} (stop-free subtree): {:?}",
        clean.0,
        reach.to_vec()
    );
    println!(
        "acceptance set of the 'sees stop' sub-automaton: {:?}",
        accepts_from(&t, &walker.subs[0]).to_vec()
    );

    // the same automaton as a Regular XPath(W) expression (Kleene)
    let back = treewalk::core::ntwa_to_rpath(&walker);
    println!(
        "\nKleene translation of the walker:\n  {}",
        rpath_to_string(&back, &ab)
    );

    // sanity: same relation on this tree
    assert_eq!(
        treewalk::twa::eval_rel(&t, &walker),
        treewalk::regxpath::eval_rel(&t, &back),
    );
    println!("✓ automaton and translated expression agree on this tree");

    // a taste of the decision procedures: is there a tree where some node
    // has an ok child *and* is stop-labelled? (downward fragment: exact)
    let mut cab = Alphabet::from_names(["ok", "stop"]);
    let f = treewalk::corexpath::parse_node_expr("stop and <down[ok]>", &mut cab).unwrap();
    match satisfiable(&f, 2).unwrap() {
        Some(w) => println!(
            "\nsatisfiability witness for 'stop and <down[ok]>': {}",
            to_sexp(&w, &cab)
        ),
        None => println!("\nunsatisfiable"),
    }
}

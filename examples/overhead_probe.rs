//! The instrumentation overhead probe: the serving hot path (plan-cached
//! `Prepared::eval` over a corpus of documents) timed in whichever
//! feature configuration this binary was built with.
//!
//! CI runs it twice — default features (instrumentation on) and
//! `--no-default-features` (every counter, span, and histogram call
//! compiled to nothing) — and gates the ratio of the two min-of-rounds
//! timings at 1.05×. That is the "zero-cost when off, cheap when on"
//! contract, measured rather than asserted.
//!
//! ```sh
//! cargo run --release --example overhead_probe
//! cargo run --release --no-default-features --example overhead_probe
//! ```
//!
//! Output is one JSON line:
//! `{"schema":"twx-overhead/1","obs_enabled":…,"rounds":…,"evals_per_round":…,"matches_per_round":…,"min_round_ns":…}`

use std::sync::Arc;
use treewalk::{Backend, Engine};
use twx_xtree::generate::{random_document_in, Shape};
use twx_xtree::rng::SplitMix64;
use twx_xtree::{Catalog, Document};

/// The serve mix from E10: a cheap scan, a transitive-closure walk, and
/// a filter-heavy query.
const QUERIES: [&str; 3] = [
    "down*[a]",
    "(down | right)*[b]",
    "down*[<down[c]> or <down[d]>]",
];

// documents large enough that per-eval work dwarfs the fixed per-eval
// instrumentation (clock reads, histogram record, stage bookkeeping);
// what's left to measure is the per-step cost inside the evaluators
const N_DOCS: usize = 24;
const DOC_SIZE: usize = 400;
const ROUNDS: usize = 7;
const REPS_PER_ROUND: usize = 3;

fn main() {
    let catalog = Arc::new(Catalog::from_names(["a", "b", "c", "d"]));
    let mut rng = SplitMix64::seed_from_u64(9);
    let docs: Vec<Document> = (0..N_DOCS)
        .map(|_| random_document_in(Shape::DocumentLike, DOC_SIZE, &catalog, &mut rng))
        .collect();
    let engine = Engine::with_backend(Backend::Product);
    // compile once, outside the timed region — the hot path under test
    // is plan-cached evaluation, exactly what a warmed service runs
    let pool: Vec<_> = QUERIES
        .iter()
        .map(|q| engine.prepare_in(&catalog, q).expect("pool query compiles"))
        .collect();

    let mut matches_per_round = 0u64;
    let mut min_round_ns = u64::MAX;
    // one untimed warmup pass, then min-of-rounds (the minimum is the
    // noise-robust statistic: every perturbation only ever adds time)
    for round in 0..=ROUNDS {
        let t0 = std::time::Instant::now();
        let mut matches = 0u64;
        for _ in 0..REPS_PER_ROUND {
            for prepared in &pool {
                for doc in &docs {
                    matches += prepared.eval(doc, doc.tree.root()).count() as u64;
                }
            }
        }
        let ns = t0.elapsed().as_nanos() as u64;
        if round == 0 {
            matches_per_round = matches;
            continue; // warmup
        }
        assert_eq!(matches, matches_per_round, "rounds must do identical work");
        min_round_ns = min_round_ns.min(ns);
    }

    println!(
        "{{\"schema\":\"twx-overhead/1\",\"obs_enabled\":{},\"rounds\":{ROUNDS},\
         \"evals_per_round\":{},\"matches_per_round\":{matches_per_round},\
         \"min_round_ns\":{min_round_ns}}}",
        twx_obs::ENABLED,
        REPS_PER_ROUND * QUERIES.len() * N_DOCS,
    );
}

//! Quickstart: parse an XML document, run Core XPath and Regular XPath(W)
//! queries against it, and print the answers.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use treewalk::corexpath::parser::parse_path_expr;
use treewalk::corexpath::{eval_node, query};
use treewalk::regxpath::parser::{parse_rnode, parse_rpath};
use treewalk::xtree::parse::parse_xml;
use treewalk::xtree::serialize::to_sexp;

fn main() {
    // The example document of the talk that surveys the paper's area.
    let xml = r#"<?xml version="1.0" encoding="UTF-8"?>
      <talk date="15-Dec-2010">
        <speaker uni="Leicester">T. Litak</speaker>
        <title><i>XPath</i> from a Logical Point of View</title>
        <location><i>ATT LT3</i><b>Leicester</b></location>
      </talk>"#;

    let mut doc = parse_xml(xml).expect("well-formed XML");
    println!("document: {}", to_sexp(&doc.tree, &doc.alphabet));
    println!("nodes: {}\n", doc.tree.len());

    // --- Core XPath ------------------------------------------------------
    // children of the root that have an <i> child: down[<down[i]>]
    let p = parse_path_expr("down[<down[i]>]", &mut doc.alphabet).expect("query parses");
    let answer = query(&doc.tree, &p, doc.tree.root());
    println!("down[<down[i]>] from the root:");
    for v in answer.iter() {
        println!("  node {} ({})", v.0, doc.label_name(v));
    }

    // node expression: leaves
    let f = treewalk::corexpath::parse_node_expr("leaf", &mut doc.alphabet).unwrap();
    let leaves = eval_node(&doc.tree, &f);
    println!("\nleaves: {:?}", leaves.to_vec());

    // --- Regular XPath(W) -------------------------------------------------
    // Kleene star over arbitrary paths: walk down any number of levels,
    // then require a <b>-labelled node within the current subtree.
    let rp = parse_rpath("down*[W(<down*[b]>)]", &mut doc.alphabet).unwrap();
    let answer = treewalk::regxpath::query(&doc.tree, &rp, doc.tree.root());
    println!("\ndown*[W(<down*[b]>)] from the root:");
    for v in answer.iter() {
        println!("  node {} ({})", v.0, doc.label_name(v));
    }

    // the W operator in action: ⟨up⟩ vs W(⟨up⟩)
    let has_parent = parse_rnode("<up>", &mut doc.alphabet).unwrap();
    let within = parse_rnode("W(<up>)", &mut doc.alphabet).unwrap();
    println!(
        "\n<up> holds at {} node(s); W(<up>) at {} (every node is the root of its own subtree)",
        treewalk::regxpath::eval_node(&doc.tree, &has_parent).count(),
        treewalk::regxpath::eval_node(&doc.tree, &within).count(),
    );
}

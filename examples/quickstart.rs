//! Quickstart: parse an XML document into a shared catalog, run Core
//! XPath and Regular XPath(W) queries against it — without ever mutating
//! the document — and print the answers.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use treewalk::corexpath::parser::parse_path_expr_catalog;
use treewalk::corexpath::{eval_node, query};
use treewalk::regxpath::parser::{parse_rnode_catalog, parse_rpath_catalog};
use treewalk::xtree::parse::parse_xml_catalog;
use treewalk::xtree::serialize::to_sexp;
use treewalk::xtree::Catalog;
use treewalk::{Backend, Engine};

fn main() {
    // The example document of the talk that surveys the paper's area.
    let xml = r#"<?xml version="1.0" encoding="UTF-8"?>
      <talk date="15-Dec-2010">
        <speaker uni="Leicester">T. Litak</speaker>
        <title><i>XPath</i> from a Logical Point of View</title>
        <location><i>ATT LT3</i><b>Leicester</b></location>
      </talk>"#;

    // One append-only catalog holds the label space; the parsed document
    // carries a snapshot and is immutable from here on.
    let catalog = Catalog::new();
    let doc = parse_xml_catalog(xml, &catalog).expect("well-formed XML");
    println!("document: {}", to_sexp(&doc.tree, &doc.alphabet));
    println!("nodes: {}\n", doc.tree.len());

    // --- Core XPath ------------------------------------------------------
    // children of the root that have an <i> child: down[<down[i]>]
    let p = parse_path_expr_catalog("down[<down[i]>]", &catalog).expect("query parses");
    let answer = query(&doc.tree, &p, doc.tree.root());
    println!("down[<down[i]>] from the root:");
    for v in answer.iter() {
        println!("  node {} ({})", v.0, doc.label_name(v));
    }

    // node expression: leaves
    let f = treewalk::corexpath::parse_node_expr_catalog("leaf", &catalog).unwrap();
    let leaves = eval_node(&doc.tree, &f);
    println!("\nleaves: {:?}", leaves.to_vec());

    // --- Regular XPath(W) -------------------------------------------------
    // Kleene star over arbitrary paths: walk down any number of levels,
    // then require a <b>-labelled node within the current subtree.
    let rp = parse_rpath_catalog("down*[W(<down*[b]>)]", &catalog).unwrap();
    let answer = treewalk::regxpath::query(&doc.tree, &rp, doc.tree.root());
    println!("\ndown*[W(<down*[b]>)] from the root:");
    for v in answer.iter() {
        println!("  node {} ({})", v.0, doc.label_name(v));
    }

    // the W operator in action: ⟨up⟩ vs W(⟨up⟩)
    let has_parent = parse_rnode_catalog("<up>", &catalog).unwrap();
    let within = parse_rnode_catalog("W(<up>)", &catalog).unwrap();
    println!(
        "\n<up> holds at {} node(s); W(<up>) at {} (every node is the root of its own subtree)",
        treewalk::regxpath::eval_node(&doc.tree, &has_parent).count(),
        treewalk::regxpath::eval_node(&doc.tree, &within).count(),
    );

    // --- prepare once, serve many ----------------------------------------
    // The engine compiles through a shared plan cache; the document is
    // only ever borrowed immutably, so one plan serves many threads.
    let engine = Engine::with_backend(Backend::Product);
    let prepared = engine.prepare(&doc, "down*[i]").expect("query compiles");
    let total: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    // each thread re-prepares the same query: after the
                    // compile above, every one is a plan-cache hit
                    let again = engine.prepare(&doc, "down*[i]").expect("cached");
                    again.eval(&doc, doc.tree.root()).count()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    drop(prepared);
    let stats = engine.cache_stats();
    println!(
        "\ndown*[i] served from 4 threads: {total} answers total \
         (plan cache: {} hit(s), {} miss(es), {} eviction(s))",
        stats.hits, stats.misses, stats.evictions
    );

    // --- the bytecode VM backend ------------------------------------------
    // The same query compiled once to register bytecode over dense
    // bitsets; repeat prepares hit the VM engine's plan cache and every
    // eval recycles its registers through a thread-local arena.
    let vm = Engine::with_backend(Backend::Vm);
    let profile = vm
        .explain(&doc, "down*[i]", doc.tree.root())
        .expect("query compiles");
    let _again = vm.prepare(&doc, "down*[i]").expect("cached");
    let vm_stats = vm.cache_stats();
    println!(
        "vm backend: {} answer(s) from a {}-instruction program over {} register(s) \
         (plan cache: {} hit(s), {} miss(es))",
        profile.result_count,
        profile.compiled.vm_instrs,
        profile.compiled.vm_regs,
        vm_stats.hits,
        vm_stats.misses
    );
}

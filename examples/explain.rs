//! EXPLAIN: profile the same query through all three evaluation
//! backends and compare their cost structures.
//!
//! ```sh
//! cargo run --release --example explain
//! cargo run --release --no-default-features --example explain  # no-op counters
//! ```

use treewalk::xtree::parse::parse_xml;
use treewalk::{Backend, Engine};

fn main() {
    let xml = "<lib><shelf><book/><zine/></shelf><shelf><book><errata/></book></shelf></lib>";
    let query = "down*[book]";

    println!(
        "instrumentation {} (rebuild with --no-default-features to disable)\n",
        if treewalk::obs::ENABLED {
            "enabled"
        } else {
            "disabled"
        }
    );

    // the document is immutable: every backend explains the same value
    let doc = parse_xml(xml).expect("well-formed example document");
    let root = doc.tree.root();
    for backend in [Backend::Product, Backend::Automaton, Backend::Logic] {
        let profile = Engine::with_backend(backend)
            .explain(&doc, query, root)
            .expect("well-formed example query");
        println!("{profile}");
    }

    // the same profile, machine-readable; a second explain through the
    // same engine serves the compiled plan from the cache
    let engine = Engine::new();
    engine.explain(&doc, query, root).expect("query");
    let profile = engine.explain(&doc, query, root).expect("query");
    println!("as JSON:\n{}", profile.to_json().render());
    let stats = engine.cache_stats();
    println!(
        "plan cache after two explains: {} hit(s), {} miss(es)",
        stats.hits, stats.misses
    );

    // the mandatory simplify stage also prunes provably-unsatisfiable
    // downward filters (decided by type-automaton emptiness), visible as
    // the simplify_unsat_pruned counter in the profile
    let contradiction = "down*[book and !book]";
    let profile = engine.explain(&doc, contradiction, root).expect("query");
    println!(
        "\n{contradiction}: {} answer(s); nonzero counters: {:?}",
        profile.result_count,
        profile.active_counters(),
    );
}

//! The paper's theorem, executed: take one query, render it in all three
//! formalisms — Regular XPath(W), FO(MTC), nested tree walking automaton —
//! and watch the translations agree on a corpus of trees.
//!
//! ```sh
//! cargo run --example equivalence_triangle
//! ```

use treewalk::core::diff::{check_tri, standard_corpus, TriQuery};
use treewalk::fotc::print::formula_to_string;
use treewalk::regxpath::parser::parse_rpath;
use treewalk::regxpath::print::rpath_to_string;
use treewalk::xtree::Alphabet;

fn main() {
    let mut ab = Alphabet::from_names(["a", "b"]);

    // A query using everything the paper adds to Core XPath: arbitrary
    // star, tests, and the W (within) operator.
    let source = "(down[a] | right)*[W(<down*[b]>)]";
    let p = parse_rpath(source, &mut ab).unwrap();

    println!("Regular XPath(W) query:\n  {}\n", rpath_to_string(&p, &ab));

    let tri = TriQuery::from_xpath(&p);

    println!("FO(MTC) translation (free variables x0, x1):");
    println!("  {}\n", formula_to_string(&tri.logic, &ab));

    println!("nested tree walking automaton:");
    println!(
        "  {} states, {} transitions, nesting depth {}\n",
        tri.automaton.total_states(),
        tri.automaton.total_transitions(),
        tri.automaton.depth()
    );

    println!("Kleene translation back from the automaton:");
    println!("  {}\n", rpath_to_string(&tri.xpath_back, &ab));

    match &tri.xpath_from_logic {
        Some(q) => println!(
            "guarded-fragment translation back from the logic:\n  {}\n",
            rpath_to_string(q, &ab)
        ),
        None => println!(
            "logic image outside the guarded fragment (uses W) — validated semantically instead\n"
        ),
    }

    let corpus = standard_corpus(4, 2, 5, 2008);
    println!(
        "checking all renditions on {} trees (every tree up to 4 nodes over 2 labels, plus random trees)...",
        corpus.len()
    );
    match check_tri(&tri, &corpus) {
        None => println!("✓ the equivalence triangle commutes on the whole corpus"),
        Some(m) => println!("✗ MISMATCH ({}) on tree {:?}", m.describe(), m.tree),
    }
}

//! Axis fragments and the complexity landscape.
//!
//! The literature classifies the query-equivalence problem of
//! `CoreXPath(A)` by the axis set `A` (coNP / PSPACE / EXPTIME). This
//! example classifies concrete queries, shows the derived axes
//! (`following`, document order) defined inside the language, and uses
//! the abbreviated W3C surface syntax end to end.
//!
//! ```sh
//! cargo run --example fragments_and_complexity
//! ```

use treewalk::corexpath::abbrev::parse_abbrev_catalog;
use treewalk::corexpath::derived;
use treewalk::corexpath::fragment::{axes_of_path, classify};
use treewalk::corexpath::parser::parse_path_expr_catalog;
use treewalk::corexpath::print::path_to_string;
use treewalk::xtree::parse::parse_xml_catalog;
use treewalk::xtree::Catalog;

fn main() {
    let catalog = Catalog::new();
    let doc = parse_xml_catalog(
        "<library><shelf><book/><book/></shelf><shelf><book/></shelf></library>",
        &catalog,
    )
    .unwrap();

    println!("== fragment classification ==");
    let queries = [
        "down/down[book]",
        "down+",
        "down/down+[book]",
        "up+/right",
        "down/right+",
        "down+ | right+ | left+",
    ];
    for q in queries {
        let p = parse_path_expr_catalog(q, &catalog).unwrap();
        let axes = axes_of_path(&p);
        let complexity = classify(&axes);
        println!("  {q:<28} axes {axes:?}  equivalence: {complexity:?}");
    }

    println!("\n== derived axes, defined inside the language ==");
    for (name, p) in [
        ("following", derived::following()),
        ("preceding", derived::preceding()),
        ("document-order", derived::document_order()),
        ("to-root", derived::to_root()),
    ] {
        println!("  {name:<16} = {}", path_to_string(&p, &doc.alphabet));
    }

    // document order from the second book: everything after it
    let books = parse_abbrev_catalog("//book", &catalog).unwrap();
    let all_books = treewalk::corexpath::query(&doc.tree, &books, doc.tree.root());
    let second = all_books.to_vec()[1];
    let after = treewalk::corexpath::query(&doc.tree, &derived::following(), second);
    println!(
        "\nnodes following book #{} in document order: {:?}",
        second.0,
        after.to_vec()
    );

    println!("\n== abbreviated W3C syntax compiles to the logical core ==");
    for q in ["/shelf/book", "//book", "/shelf[book]/..", "shelf/*"] {
        let p = parse_abbrev_catalog(q, &catalog).unwrap();
        let ans = treewalk::corexpath::query(&doc.tree, &p, doc.tree.root());
        println!(
            "  {q:<18} -> {:<55} answers {:?}",
            path_to_string(&p, &doc.alphabet),
            ans.to_vec()
        );
    }
}

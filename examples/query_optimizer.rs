//! A miniature query optimizer with *certified* rewrite rules.
//!
//! The motivation from the paper's area: evaluation times of two
//! equivalent queries may differ by orders of magnitude, so an optimizer
//! rewrites aggressively — but every rewrite rule must be a *valid*
//! equivalence ("fake equivalences are not so easy to spot, especially in
//! a hurry"). This example:
//!
//! 1. simplifies queries with the axiomatic rewriter;
//! 2. certifies candidate rule instances with the exact automata-based
//!    decision procedure (downward fragment) or the bounded-domain decider
//!    (full language), printing a countermodel when a plausible-looking
//!    rule is in fact unsound;
//! 3. measures the evaluation-time effect of a rewrite.
//!
//! ```sh
//! cargo run --release --example query_optimizer
//! ```

use std::time::Instant;
use treewalk::core::decide::{downward_equivalent, node_equiv_bounded, path_equiv_bounded};
use treewalk::core::from_core::{core_node_to_regular, core_path_to_regular};
use treewalk::corexpath::parser::{parse_node_expr, parse_path_expr};
use treewalk::corexpath::print::path_to_string;
use treewalk::corexpath::rewrite::simplify_path;
use treewalk::xtree::generate::{random_tree, Shape};
use treewalk::xtree::{Alphabet, NodeSet};

fn main() {
    let mut ab = Alphabet::from_names(["a0", "a1"]);

    // ---- 1. the simplifier at work --------------------------------------
    println!("== axiomatic simplification ==");
    for q in [
        "./down[true]/.",
        "down[a0][a1]",
        "(down | down)/(up | up[!<left> or <left>])",
        "down[<(. | .)[a0]>]",
    ] {
        let p = parse_path_expr(q, &mut ab).unwrap();
        let s = simplify_path(&p);
        println!("  {q}  ->  {}", path_to_string(&s, &ab));
    }

    // ---- 2. certifying rule candidates ----------------------------------
    println!("\n== certifying candidate equivalences (downward fragment: exact) ==");
    let candidates = [
        // (lhs, rhs) — some valid, some traps
        ("<down/down+>", "<down+/down>"),
        ("<down>", "<down+>"),
        ("<down[a0]>", "<down+[a0]>"), // trap: descendant need not be child
        ("a0", "!a1"),                 // valid under unique labelling with 2 labels
    ];
    for (l, r) in candidates {
        let lf = parse_node_expr(l, &mut ab).unwrap();
        let rf = parse_node_expr(r, &mut ab).unwrap();
        match downward_equivalent(&lf, &rf, 2) {
            Ok(true) => println!("  VALID    {l} == {r}"),
            Ok(false) => {
                // extract a countermodel via the bounded decider
                let v = node_equiv_bounded(
                    &core_node_to_regular(&lf),
                    &core_node_to_regular(&rf),
                    4,
                    2,
                );
                match v {
                    treewalk::core::decide::BoundedVerdict::Inequivalent { tree, witness } => {
                        println!(
                            "  INVALID  {l} == {r}   countermodel: {} at node {}",
                            treewalk::xtree::serialize::to_sexp(&tree, &ab),
                            witness.0 .0
                        );
                    }
                    _ => println!("  INVALID  {l} == {r}   (countermodel larger than bound)"),
                }
            }
            Err(e) => println!("  SKIPPED  {l} == {r}: {e}"),
        }
    }

    println!("\n== full language: bounded certification ==");
    let pairs = [
        ("down/down+", "down+/down"),
        ("down[a0]/down+", "down+[a0]/down"),
    ];
    for (l, r) in pairs {
        let lp = core_path_to_regular(&parse_path_expr(l, &mut ab).unwrap());
        let rp = core_path_to_regular(&parse_path_expr(r, &mut ab).unwrap());
        let v = path_equiv_bounded(&lp, &rp, 5, 2);
        if v.is_equivalent() {
            println!("  VALID (up to 5 nodes)  {l} == {r}");
        } else {
            println!("  INVALID                {l} == {r}");
        }
    }

    // ---- 3. the payoff: rewriting changes evaluation time ---------------
    println!("\n== evaluation-time effect of a rewrite ==");
    use twx_xtree::rng::SplitMix64 as StdRng;
    let mut rng = StdRng::seed_from_u64(42);
    let t = random_tree(Shape::DocumentLike, 50_000, 2, &mut rng);
    let verbose =
        parse_path_expr("./down[true]/./down[true][true]/. | down/down", &mut ab).unwrap();
    let tidy = simplify_path(&verbose);
    println!(
        "  query: {}  ->  {}",
        path_to_string(&verbose, &ab),
        path_to_string(&tidy, &ab)
    );
    let ctx = NodeSet::singleton(t.len(), t.root());
    let t0 = Instant::now();
    let r1 = treewalk::corexpath::eval_path_image(&t, &verbose, &ctx);
    let d1 = t0.elapsed();
    let t0 = Instant::now();
    let r2 = treewalk::corexpath::eval_path_image(&t, &tidy, &ctx);
    let d2 = t0.elapsed();
    assert_eq!(r1, r2, "rewrite changed the answer!");
    println!(
        "  50k-node tree: {:?} (original) vs {:?} (simplified), same {} answers",
        d1,
        d2,
        r1.count()
    );
}

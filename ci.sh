#!/usr/bin/env bash
# Offline CI gate: formatting, lints, both feature configurations, the
# full test suite, and a harness smoke run whose JSON export must parse.
set -euo pipefail
cd "$(dirname "$0")"

say() { printf '\n== %s ==\n' "$*"; }

say "cargo fmt --check"
cargo fmt --all -- --check

say "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

say "release build (default features)"
cargo build --release --workspace

say "release build (instrumentation disabled)"
cargo build --release --no-default-features

say "docs (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

say "test suite"
cargo test -q --workspace

say "test suite (release)"
cargo test -q --release --workspace

say "conformance fuzz gate"
cargo build --release -p twx-conform --bin twx-fuzz
fuzz_out="$(mktemp -t twx_fuzz.XXXXXX.json)"
./target/release/twx-fuzz --seed 42 --iters 300 \
  --replay tests/corpus/regressions.jsonl > "$fuzz_out"
python3 - "$fuzz_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "twx-fuzz/1", doc.get("schema")
assert doc["iterations"] == 300, doc["iterations"]
assert doc["divergences"] == 0, doc
assert doc["replayed"] > 0, "golden corpus was not replayed"
assert doc["replay_divergences"] == 0, doc
assert len(doc["routes"]) == 9, [r["route"] for r in doc["routes"]]
print("twx-fuzz: 300 iterations +", doc["replayed"],
      "golden repros, 0 divergences across", len(doc["routes"]), "routes")
EOF
rm -f "$fuzz_out"

say "harness smoke run"
out="$(mktemp -t bench_harness.XXXXXX.json)"
trap 'rm -f "$out"' EXIT
cargo run --release -p twx-bench --bin harness -- --quick --json "$out" > /dev/null
python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "twx-bench/1", doc.get("schema")
assert doc["obs_enabled"] is True
assert len(doc["experiments"]) == 10, len(doc["experiments"])
assert len(doc["quickstart_profiles"]) == 3
for p in doc["quickstart_profiles"]:
    assert p["result_count"] == 2, p
    assert p["counters"]["plan_cache_misses"] == 1, p
cache = doc["plan_cache"]
assert cache["misses"] == 3 and cache["hits"] == 3, cache
e10 = doc["e10"]
assert len(e10["shards"]) >= 2, e10
for point in e10["shards"]:
    assert point["throughput_qps"] > 0, point
    for field in ("p50_us", "p95_us", "p99_us"):
        assert field in point, (field, point)
sat = e10["saturation"]
assert sat["rejected"] > 0, sat
assert sat["admitted"] + sat["rejected"] == sat["submitted"], sat
print("BENCH_HARNESS.json: schema ok,", len(doc["experiments"]), "experiments,",
      len(doc["quickstart_profiles"]), "profiles, plan cache", cache)
print("e10:", len(e10["shards"]), "shard counts,",
      sat["rejected"], "of", sat["submitted"], "burst requests rejected")
EOF

say "twx-serve round trip"
cargo build --release -p twx-corpus --bin twx-serve
serve_log="$(mktemp -t twx_serve.XXXXXX.log)"
cargo run --release -p twx-corpus --bin twx-serve -- \
  --port 0 --shards 2 --workers 2 --synthetic 6x40 --seed 1 > "$serve_log" 2>/dev/null &
serve_pid=$!
trap 'rm -f "$out" "$serve_log"; kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 300); do
  grep -q "listening" "$serve_log" && break
  sleep 0.1
done
port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$serve_log")"
if [ -z "$port" ]; then
  echo "twx-serve never reported a listening port:" >&2
  cat "$serve_log" >&2
  exit 1
fi
python3 - "$port" <<'EOF'
import json, socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
f = s.makefile("rw")
def rpc(req):
    f.write(json.dumps(req) + "\n"); f.flush()
    return json.loads(f.readline())
r = rpc({"op": "query", "query": "down*[b]"})
assert r["ok"] and r["matches"] > 0 and len(r["docs"]) == 6, r
assert len(r["shards"]) == 2 and not r["timed_out"], r
bad = rpc({"op": "query", "query": "down["})
assert not bad["ok"] and bad["error"] == "engine", bad
st = rpc({"op": "stats"})
assert st["ok"] and st["completed"] == 1 and st["workers"] == 2, st
bye = rpc({"op": "shutdown"})
assert bye["ok"] and bye["shutting_down"], bye
print("twx-serve: query/stats/shutdown round trip ok on port", sys.argv[1])
EOF
wait "$serve_pid"

say "all checks passed"

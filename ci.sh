#!/usr/bin/env bash
# Offline CI gate: formatting, lints, both feature configurations, the
# full test suite, and a harness smoke run whose JSON export must parse.
set -euo pipefail
cd "$(dirname "$0")"

say() { printf '\n== %s ==\n' "$*"; }

say "cargo fmt --check"
cargo fmt --all -- --check

say "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

say "release build (default features)"
cargo build --release --workspace

say "release build (instrumentation disabled)"
cargo build --release --no-default-features

say "docs (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

say "test suite"
cargo test -q --workspace

say "test suite (release)"
cargo test -q --release --workspace

say "harness smoke run"
out="$(mktemp -t bench_harness.XXXXXX.json)"
trap 'rm -f "$out"' EXIT
cargo run --release -p twx-bench --bin harness -- --quick --json "$out" > /dev/null
python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "twx-bench/1", doc.get("schema")
assert doc["obs_enabled"] is True
assert len(doc["experiments"]) == 9, len(doc["experiments"])
assert len(doc["quickstart_profiles"]) == 3
for p in doc["quickstart_profiles"]:
    assert p["result_count"] == 2, p
    assert p["counters"]["plan_cache_misses"] == 1, p
cache = doc["plan_cache"]
assert cache["misses"] == 3 and cache["hits"] == 3, cache
print("BENCH_HARNESS.json: schema ok,", len(doc["experiments"]), "experiments,",
      len(doc["quickstart_profiles"]), "profiles, plan cache", cache)
EOF

say "all checks passed"

#!/usr/bin/env bash
# Offline CI gate: formatting, lints, both feature configurations, the
# full test suite, and a harness smoke run whose JSON export must parse.
set -euo pipefail
cd "$(dirname "$0")"

say() { printf '\n== %s ==\n' "$*"; }

say "cargo fmt --check"
cargo fmt --all -- --check

say "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

say "release build (default features)"
cargo build --release --workspace

say "release build (instrumentation disabled)"
cargo build --release --no-default-features

say "docs (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# the suite only ever grows: this many tests passed when the event-loop
# serving PR landed; a silent drop below the floor means tests were
# lost, not fixed
TEST_FLOOR=592

say "test suite"
test_log="$(mktemp -t twx_tests.XXXXXX.log)"
cargo test -q --workspace 2>&1 | tee "$test_log"

say "test-count floor"
python3 - "$test_log" "$TEST_FLOOR" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
floor = int(sys.argv[2])
passed = sum(int(m) for m in re.findall(r"(\d+) passed", text))
assert "FAILED" not in text, "test suite reported failures"
assert passed >= floor, f"test count regressed: {passed} < {floor}"
print(f"test-count floor: {passed} tests passed (floor {floor})")
EOF
rm -f "$test_log"

say "test suite (release, 4 eval threads as the engine default)"
# the whole suite again with frontier-parallel evaluation switched on by
# default: every engine that does not pin parallelism explicitly now runs
# the push/pull kernels, so any scheduling nondeterminism fails loudly
TWX_EVAL_THREADS=4 cargo test -q --release --workspace

say "conformance fuzz gate"
cargo build --release -p twx-conform --bin twx-fuzz
fuzz_out="$(mktemp -t twx_fuzz.XXXXXX.json)"
./target/release/twx-fuzz --seed 42 --iters 300 \
  --replay tests/corpus/regressions.jsonl > "$fuzz_out"
python3 - "$fuzz_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "twx-fuzz/1", doc.get("schema")
assert doc["iterations"] == 300, doc["iterations"]
assert doc["divergences"] == 0, doc
assert doc["replayed"] > 0, "golden corpus was not replayed"
assert doc["replay_divergences"] == 0, doc
assert len(doc["routes"]) == 11, [r["route"] for r in doc["routes"]]
assert any(r["route"] == "vm" for r in doc["routes"]), doc["routes"]
assert any(r["route"] == "parallel" for r in doc["routes"]), doc["routes"]
print("twx-fuzz: 300 iterations +", doc["replayed"],
      "golden repros, 0 divergences across", len(doc["routes"]), "routes")
EOF
rm -f "$fuzz_out"

say "vm fault self-test (vm=drop-max must be caught and shrunk)"
vm_fault_out="$(mktemp -t twx_vm_fault.XXXXXX.json)"
if ./target/release/twx-fuzz --seed 42 --iters 300 \
    --fault vm=drop-max > "$vm_fault_out"; then
  echo "a broken VM route was NOT caught" >&2
  exit 1
fi
python3 - "$vm_fault_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["divergences"] > 0, "vm fault injected but no divergence found"
for d in doc["found"]:
    assert d["routes"] == ["vm"], d["routes"]
    assert d["query_size"] <= 6, f"shrunk query still has {d['query_size']} AST nodes"
    assert d["doc_nodes"] <= 8, f"shrunk document still has {d['doc_nodes']} nodes"
print("vm fault self-test:", doc["divergences"], "divergences caught, repros",
      "shrunk to <=", max(d["query_size"] for d in doc["found"]), "AST nodes /",
      max(d["doc_nodes"] for d in doc["found"]), "doc nodes")
EOF
rm -f "$vm_fault_out"

say "frontier fault self-test (frontier=drop-chunk must be caught and shrunk)"
frontier_fault_out="$(mktemp -t twx_frontier_fault.XXXXXX.json)"
if ./target/release/twx-fuzz --seed 42 --iters 300 \
    --fault frontier=drop-chunk > "$frontier_fault_out"; then
  echo "a parallel kernel dropping a chunk was NOT caught" >&2
  exit 1
fi
python3 - "$frontier_fault_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["divergences"] > 0, "frontier fault injected but no divergence found"
for d in doc["found"]:
    assert d["routes"] == ["parallel"], d["routes"]
    assert d["query_size"] <= 6, f"shrunk query still has {d['query_size']} AST nodes"
    assert d["doc_nodes"] <= 8, f"shrunk document still has {d['doc_nodes']} nodes"
print("frontier fault self-test:", doc["divergences"], "divergences caught,",
      "only the parallel route blamed, repros shrunk to <=",
      max(d["query_size"] for d in doc["found"]), "AST nodes /",
      max(d["doc_nodes"] for d in doc["found"]), "doc nodes")
EOF
rm -f "$frontier_fault_out"

say "mutation fuzz gate (live corpus + result cache)"
mut_out="$(mktemp -t twx_mutate.XXXXXX.json)"
./target/release/twx-fuzz --mutate --seed 42 --iters 300 > "$mut_out"
python3 - "$mut_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "twx-fuzz-mutate/1", doc.get("schema")
assert doc["iterations"] == 300, doc["iterations"]
assert doc["divergences"] == 0, doc
print("twx-fuzz --mutate: 300 edit scripts through the result cache,",
      "0 divergences in", doc["elapsed_ms"], "ms")
EOF
rm -f "$mut_out"

say "mutation fault self-test (cache=skip-invalidate must be caught)"
fault_out="$(mktemp -t twx_mutate_fault.XXXXXX.json)"
if ./target/release/twx-fuzz --mutate --seed 42 --iters 300 \
    --fault cache=skip-invalidate > "$fault_out"; then
  echo "unsound invalidation was NOT caught" >&2
  exit 1
fi
python3 - "$fault_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["fault"] == "cache=skip-invalidate", doc.get("fault")
assert doc["divergences"] > 0, "fault injected but no divergence found"
for d in doc["found"]:
    assert d["edits"] <= 6, f"shrunk repro still has {d['edits']} edits"
print("fault self-test:", doc["divergences"], "divergences caught,",
      "max", max(d["edits"] for d in doc["found"]), "edit(s) after shrinking")
EOF
rm -f "$fault_out"

say "crash-recovery fuzz gate (store-backed corpus killed and recovered)"
crash_out="$(mktemp -t twx_crash.XXXXXX.json)"
./target/release/twx-fuzz --crash --seed 42 --iters 300 > "$crash_out"
python3 - "$crash_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "twx-fuzz-crash/1", doc.get("schema")
assert doc["iterations"] == 300, doc["iterations"]
assert doc["divergences"] == 0, doc
print("twx-fuzz --crash: 300 corpora killed at arbitrary points,",
      "0 recovery divergences in", doc["elapsed_ms"], "ms")
EOF
rm -f "$crash_out"

say "crash fault self-test (store=skip-fsync must be caught and shrunk)"
crash_fault_out="$(mktemp -t twx_crash_fault.XXXXXX.json)"
if ./target/release/twx-fuzz --crash --seed 42 --iters 300 \
    --fault store=skip-fsync > "$crash_fault_out"; then
  echo "a store that lies about fsync was NOT caught" >&2
  exit 1
fi
python3 - "$crash_fault_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["fault"] == "store=skip-fsync", doc.get("fault")
assert doc["divergences"] > 0, "fault injected but no divergence found"
for d in doc["found"]:
    assert len(d["ops"]) <= 3, f"shrunk repro still has {len(d['ops'])} ops: {d}"
print("crash fault self-test:", doc["divergences"], "divergences caught,",
      "max", max(len(d["ops"]) for d in doc["found"]), "op(s) after shrinking")
EOF
rm -f "$crash_fault_out"

say "harness smoke run"
out="$(mktemp -t bench_harness.XXXXXX.json)"
trap 'rm -f "$out"' EXIT
cargo run --release -p twx-bench --bin harness -- --quick --json "$out" > /dev/null
python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "twx-bench/1", doc.get("schema")
assert doc["obs_enabled"] is True
assert len(doc["experiments"]) == 14, len(doc["experiments"])
assert len(doc["quickstart_profiles"]) == 4
for p in doc["quickstart_profiles"]:
    assert p["result_count"] == 2, p
    assert p["counters"]["plan_cache_misses"] == 1, p
vm_profile = [p for p in doc["quickstart_profiles"] if p["backend"] == "vm"]
assert len(vm_profile) == 1 and vm_profile[0]["compiled"]["vm_instrs"] > 0, vm_profile
cache = doc["plan_cache"]
assert cache["misses"] == 4 and cache["hits"] == 4, cache
e10 = doc["e10"]
assert len(e10["shards"]) >= 2, e10
for point in e10["shards"]:
    assert point["throughput_qps"] > 0, point
    for field in ("p50_us", "p95_us", "p99_us"):
        assert field in point, (field, point)
sat = e10["saturation"]
assert sat["rejected"] > 0, sat
assert sat["admitted"] + sat["rejected"] == sat["submitted"], sat
cs = e10["conn_sweep"]
assert len(cs) == 6 and {p["framing"] for p in cs} == {"ndjson", "binary"}, cs
for p in cs:
    assert p["accept_failures"] == 0 and p["io_errors"] == 0, p
    assert p["requests"] > 0 and p["throughput_qps"] > 0, p
    assert p["connect_p99_us"] > 0 and p["p99_us"] > 0, p
adm = e10["admission"]
assert adm["rejected"] > 0, adm
assert adm["admitted"] + adm["rejected"] == adm["attempted"], adm
assert adm["rejected"] == adm["server_rejected"], adm
e11 = doc["e11"]
assert e11["speedup"] >= 5, e11["speedup"]
rc = e11["result_cache"]
assert rc["hit_rate"] > 0.5, rc
assert rc["carried"] > 0 and rc["invalidated"] > 0, rc
prec = e11["precision"]
assert prec["hit_after_disjoint_edit"] is True, prec
assert prec["miss_after_overlapping_edit"] is True, prec
e12 = doc["e12"]
assert e12["pool"] >= 5, e12["pool"]
assert e12["geomean_speedup_hot"] >= 2, (
    f"vm hot geomean speedup {e12['geomean_speedup_hot']:.2f}x below the 2x bar")
vm_cache = e12["vm_plan_cache"]
assert vm_cache["misses"] == e12["pool"], vm_cache
assert vm_cache["hits"] >= e12["pool"], vm_cache
e13 = doc["e13"]
assert e13["compression_ratio"] >= 4, (
    f"snapshot encoding only {e13['compression_ratio']:.2f}x smaller than the arena (bar: 4x)")
assert len(e13["recovery"]) == 4, e13["recovery"]
assert all(p["recover_ms"] > 0 for p in e13["recovery"]), e13["recovery"]
assert e13["snapshot"]["write_nodes_per_s"] > 0, e13["snapshot"]
assert e13["snapshot"]["load_nodes_per_s"] > 0, e13["snapshot"]
e14 = doc["e14"]
assert e14["host_threads"] >= 1, e14
assert e14["pool"] >= 4, e14
for q in e14["queries"]:
    for key in ("us_1t", "us_2t", "us_4t", "us_8t"):
        assert q[key] > 0, (key, q)
assert e14["geomean_speedup_4t"] > 0, e14
print("BENCH_HARNESS.json: schema ok,", len(doc["experiments"]), "experiments,",
      len(doc["quickstart_profiles"]), "profiles, plan cache", cache)
print("e10:", len(e10["shards"]), "shard counts,",
      sat["rejected"], "of", sat["submitted"], "burst requests rejected")
print("e10 conn sweep: up to", max(p["conns"] for p in cs), "clients per framing,",
      "0 accept failures;", "admission:", adm["rejected"], "of",
      adm["attempted"], "typed-overloaded at cap", adm["max_conns"])
print("e11: %.1fx speedup, %.0f%% hit rate, %d carried / %d invalidated"
      % (e11["speedup"], 100 * rc["hit_rate"], rc["carried"], rc["invalidated"]))
print("e12: vm vs product geomean %.1fx hot / %.1fx cold over %d queries"
      % (e12["geomean_speedup_hot"], e12["geomean_speedup_cold"], e12["pool"]))
print("e13: %.1fx compression (%.2f B/node on disk vs %d B arena), "
      "load %.1fM nodes/s"
      % (e13["compression_ratio"], e13["disk_bytes_per_node"],
         e13["arena_bytes_per_node"], e13["snapshot"]["load_nodes_per_s"] / 1e6))
print("e14: %.1fx geomean at 4 threads on %d-node doc (host has %d thread(s))"
      % (e14["geomean_speedup_4t"], e14["doc_size"], e14["host_threads"]))
EOF

say "E14 strong-scaling gate (>=2x at 4 threads on a 1M-node doc)"
# strong scaling needs cores: the gate only binds on hosts with >= 4
# hardware threads — elsewhere the quick-mode determinism checks above
# already exercised the parallel kernels
host_cores="$(nproc 2>/dev/null || echo 1)"
if [ "$host_cores" -ge 4 ]; then
  e14_out="$(mktemp -t twx_e14.XXXXXX.json)"
  cargo run --release -p twx-bench --bin harness -- e14 --json "$e14_out" > /dev/null
  python3 - "$e14_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
e14 = doc["e14"]
assert e14["doc_size"] >= 1_000_000, e14["doc_size"]
assert e14["geomean_speedup_4t"] >= 2, (
    f"4-thread geomean speedup {e14['geomean_speedup_4t']:.2f}x below the 2x bar "
    f"on a {e14['doc_size']}-node doc ({e14['host_threads']} host threads)")
print("e14 gate: %.1fx geomean at 4 threads on %d-node doc"
      % (e14["geomean_speedup_4t"], e14["doc_size"]))
EOF
  rm -f "$e14_out"
else
  echo "skipped: host has $host_cores core(s), gate needs >= 4"
fi

say "observability overhead gate (enabled vs disabled, <=1.05x)"
probe_on="$(mktemp -t twx_probe_on.XXXXXX.json)"
probe_off="$(mktemp -t twx_probe_off.XXXXXX.json)"
cargo run --release --example overhead_probe > "$probe_on"
cargo run --release --no-default-features --example overhead_probe > "$probe_off"
python3 - "$probe_on" "$probe_off" <<'EOF'
import json, sys
on = json.load(open(sys.argv[1]))
off = json.load(open(sys.argv[2]))
assert on["schema"] == off["schema"] == "twx-overhead/1", (on, off)
assert on["obs_enabled"] is True and off["obs_enabled"] is False, (on, off)
assert on["matches_per_round"] == off["matches_per_round"], "probes did different work"
ratio = on["min_round_ns"] / off["min_round_ns"]
assert ratio <= 1.05, (
    f"instrumentation overhead {ratio:.3f}x exceeds 1.05x "
    f"({on['min_round_ns']}ns enabled vs {off['min_round_ns']}ns disabled)")
print(f"overhead: {ratio:.3f}x (enabled {on['min_round_ns']}ns, "
      f"disabled {off['min_round_ns']}ns, min of {on['rounds']} rounds)")
EOF
rm -f "$probe_on" "$probe_off"

say "twx-serve round trip"
cargo build --release -p twx-corpus --bin twx-serve
serve_log="$(mktemp -t twx_serve.XXXXXX.log)"
cargo run --release -p twx-corpus --bin twx-serve -- \
  --port 0 --shards 2 --workers 2 --synthetic 6x40 --seed 1 > "$serve_log" 2>/dev/null &
serve_pid=$!
trap 'rm -f "$out" "$serve_log"; kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 300); do
  grep -q "listening" "$serve_log" && break
  sleep 0.1
done
port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$serve_log")"
if [ -z "$port" ]; then
  echo "twx-serve never reported a listening port:" >&2
  cat "$serve_log" >&2
  exit 1
fi
python3 - "$port" <<'EOF'
import json, socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
f = s.makefile("rw")
def rpc(req):
    f.write(json.dumps(req) + "\n"); f.flush()
    return json.loads(f.readline())
r = rpc({"op": "query", "query": "down*[b]"})
assert r["ok"] and r["matches"] > 0 and len(r["docs"]) == 6, r
assert len(r["shards"]) == 2 and not r["timed_out"], r
up = rpc({"op": "update", "doc": 0,
          "edit": {"op": "relabel", "node": 0, "label": "b"}})
assert up["ok"] and up["version"] == 1 and up["seq"] == 1, up
r2 = rpc({"op": "query", "query": "down*[b]"})
assert r2["ok"], r2
assert {"doc": 0, "version": 1} .items() <= r2["docs"][0].items(), r2["docs"][0]
bad = rpc({"op": "query", "query": "down["})
assert not bad["ok"] and bad["error"] == "engine", bad
st = rpc({"op": "stats"})
assert st["ok"] and st["completed"] == 2 and st["workers"] == 2, st
assert st["updates"] == 1, st
# stats carries uptime, connection count, and latency percentiles
for key in ("uptime_s", "connections", "latency_p50_us", "latency_p90_us",
            "latency_p99_us", "latency_p999_us", "latency_count"):
    assert key in st, (key, st)
assert st["latency_count"] == 2 and st["connections"] >= 1, st
assert st["latency_p50_us"] <= st["latency_p99_us"], st
# a trace-flagged query returns the same answer plus an inline span tree
tr = rpc({"op": "query", "query": "down*[b]", "trace": True})
assert tr["ok"] and tr["matches"] == r2["matches"], (tr, r2)
assert "trace_id" in tr and len(tr["trace_id"]) == 16, tr
tree = tr["trace"]
assert tree["trace_id"] == tr["trace_id"], tree
root = tree["root"]
assert root["name"] == "request" and root["dur_ns"] > 0, root
stages = [c["name"] for c in root["children"]]
assert stages[0] == "prepare" and stages[-1] == "merge", stages
assert sum(s.startswith("shard") for s in stages) == 2, stages
# the metrics op ships a Prometheus text exposition; smoke-parse it
mx = rpc({"op": "metrics"})
assert mx["ok"], mx
seen = set()
for line in mx["metrics"].splitlines():
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split()
        assert kind in ("gauge", "histogram"), line
        seen.add(name)
    else:
        sample, value = line.rsplit(" ", 1)
        float(value)
        assert any(sample.startswith(n) for n in seen), line
assert {"twx_service_request_ns", "twx_service_queue_wait_ns",
        "twx_service_shard_eval_ns", "twx_serve_uptime_seconds",
        "twx_serve_connections_total"} <= seen, seen
assert 'le="+Inf"} 3' in mx["metrics"], "request histogram count"
# the slow log retains every request so far, slowest first, with profiles
sl = rpc({"op": "slowlog"})
assert sl["ok"] and len(sl["entries"]) == 3, sl
lats = [e["latency_us"] for e in sl["entries"]]
assert lats == sorted(lats, reverse=True), lats
assert any(e["trace_id"] == tr["trace_id"] for e in sl["entries"]), sl
assert all("profile" in e and e["query"] for e in sl["entries"]), sl
bye = rpc({"op": "shutdown"})
assert bye["ok"] and bye["shutting_down"], bye
print("twx-serve: query/update/stats/trace/metrics/slowlog/shutdown",
      "round trip ok on port", sys.argv[1])
EOF
wait "$serve_pid"

say "twx-serve 1k-connection soak (--max-conns admission at scale)"
soak_log="$(mktemp -t twx_soak.XXXXXX.log)"
trap 'rm -f "$out" "$serve_log" "$soak_log"; kill "$soak_pid" 2>/dev/null || true' EXIT
./target/release/twx-serve \
  --port 0 --shards 2 --workers 2 --synthetic 6x40 --seed 1 \
  --max-conns 900 > "$soak_log" 2>/dev/null &
soak_pid=$!
for _ in $(seq 1 300); do
  grep -q "listening" "$soak_log" && break
  sleep 0.1
done
port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$soak_log")"
[ -n "$port" ] || { echo "soak twx-serve never listened" >&2; exit 1; }
python3 - "$port" <<'EOF'
import json, resource, selectors, socket, sys, time
soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
resource.setrlimit(resource.RLIMIT_NOFILE, (min(hard, 4096), hard))
port = int(sys.argv[1])
N, CAP = 1000, 900
socks = [socket.create_connection(("127.0.0.1", port), timeout=10)
         for _ in range(N)]
# admission is decided at accept time: a rejected connection is sent one
# typed line and closed, an admitted one stays silently open — so the
# readable sockets are exactly the rejected ones
sel = selectors.DefaultSelector()
for s in socks:
    s.setblocking(False)
    sel.register(s, selectors.EVENT_READ)
rejected = 0
deadline = time.time() + 30
while rejected < N - CAP and time.time() < deadline:
    for key, _ in sel.select(timeout=1):
        data = key.fileobj.recv(4096)
        assert data, "an admitted connection was closed by the server"
        line = json.loads(data.decode())
        assert line["error"] == "overloaded" and line["max_conns"] == CAP, line
        rejected += 1
        sel.unregister(key.fileobj)
        key.fileobj.close()
assert rejected == N - CAP, f"expected {N-CAP} typed rejections, saw {rejected}"
alive = [s for s in socks if s.fileno() != -1]
assert len(alive) == CAP, len(alive)
# the admitted connections are all live: query over a sample of them
for s in alive[::45]:
    s.setblocking(True)
    f = s.makefile("rw")
    f.write(json.dumps({"op": "query", "query": "down*[b]"}) + "\n"); f.flush()
    r = json.loads(f.readline())
    assert r["ok"] and r["matches"] > 0, r
for s in alive:
    s.close()
# the server reaps the hangups asynchronously; retry until a fresh
# connection is admitted again, then check the counters and shut down
st = None
for _ in range(100):
    s = socket.create_connection(("127.0.0.1", port), timeout=10)
    f = s.makefile("rw")
    f.write(json.dumps({"op": "stats"}) + "\n"); f.flush()
    reply = json.loads(f.readline())
    if reply.get("error") == "overloaded":
        s.close(); time.sleep(0.1); continue
    st = reply
    break
assert st is not None, "server never had room again after the soak closed"
assert st["conns_rejected"] == N - CAP, st["conns_rejected"]
assert st["max_conns"] == CAP and st["conns_open"] == 1, st
f.write(json.dumps({"op": "shutdown"}) + "\n"); f.flush()
assert json.loads(f.readline())["ok"]
print(f"soak: {N} clients against --max-conns {CAP}: {CAP} held open,",
      f"{N-CAP} typed overloaded rejections, sampled queries all answered")
EOF
wait "$soak_pid"

say "twx-serve kill -9 and restart (--store recovery over binary frames)"
store_dir="$(mktemp -d -t twx_serve_store.XXXXXX)"
rmdir "$store_dir" # twx-serve creates the store; mktemp only reserved a name
answer_file="$(mktemp -t twx_serve_answer.XXXXXX.json)"
serve2_log="$(mktemp -t twx_serve2.XXXXXX.log)"
trap 'rm -rf "$out" "$serve_log" "$serve2_log" "$answer_file" "$store_dir";
      kill "$serve_pid" 2>/dev/null || true;
      kill "$serve2_pid" 2>/dev/null || true' EXIT
./target/release/twx-serve \
  --port 0 --shards 2 --workers 2 --synthetic 6x40 --seed 1 \
  --store "$store_dir" > "$serve2_log" 2>/dev/null &
serve2_pid=$!
for _ in $(seq 1 300); do
  grep -q "listening" "$serve2_log" && break
  sleep 0.1
done
port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$serve2_log")"
[ -n "$port" ] || { echo "store-backed twx-serve never listened" >&2; exit 1; }
python3 - "$port" "$answer_file" <<'EOF'
import json, socket, struct, sys
MAGIC = b"\xf7TW\x01"
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
def recv_exact(n):
    buf = b""
    while len(buf) < n:
        chunk = s.recv(n - len(buf))
        assert chunk, "server closed mid-frame"
        buf += chunk
    return buf
def rpc(req):
    payload = json.dumps(req).encode()
    s.sendall(MAGIC + struct.pack("<I", len(payload)) + payload)
    hdr = recv_exact(8)
    assert hdr[:4] == MAGIC, hdr
    return json.loads(recv_exact(struct.unpack("<I", hdr[4:])[0]))
# two journalled edits, an explicit snapshot between them: recovery must
# compose the snapshot generation with the journal tail
up = rpc({"op": "update", "doc": 0,
          "edit": {"op": "relabel", "node": 0, "label": "b"}})
assert up["ok"] and up["seq"] == 1, up
snap = rpc({"op": "snapshot"})
assert snap["ok"] and snap["seq"] == 1 and snap["snapshot_bytes"] > 0, snap
up2 = rpc({"op": "update", "doc": 1,
           "edit": {"op": "relabel", "node": 0, "label": "b"}})
assert up2["ok"] and up2["seq"] == 2, up2
r = rpc({"op": "query", "query": "down*[b]"})
assert r["ok"], r
json.dump({"matches": r["matches"], "docs": r["docs"]}, open(sys.argv[2], "w"))
EOF
kill -9 "$serve2_pid"
wait "$serve2_pid" 2>/dev/null || true
: > "$serve2_log"
./target/release/twx-serve \
  --port 0 --shards 2 --workers 2 --synthetic 6x40 --seed 1 \
  --store "$store_dir" > "$serve2_log" 2>/dev/null &
serve2_pid=$!
for _ in $(seq 1 300); do
  grep -q "listening" "$serve2_log" && break
  sleep 0.1
done
port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$serve2_log")"
[ -n "$port" ] || { echo "twx-serve did not come back after kill -9" >&2; exit 1; }
python3 - "$port" "$answer_file" <<'EOF'
import json, socket, struct, sys
MAGIC = b"\xf7TW\x01"
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
def recv_exact(n):
    buf = b""
    while len(buf) < n:
        chunk = s.recv(n - len(buf))
        assert chunk, "server closed mid-frame"
        buf += chunk
    return buf
def rpc(req):
    payload = json.dumps(req).encode()
    s.sendall(MAGIC + struct.pack("<I", len(payload)) + payload)
    hdr = recv_exact(8)
    assert hdr[:4] == MAGIC, hdr
    return json.loads(recv_exact(struct.unpack("<I", hdr[4:])[0]))
before = json.load(open(sys.argv[2]))
r = rpc({"op": "query", "query": "down*[b]"})
assert r["ok"], r
got = {"matches": r["matches"], "docs": r["docs"]}
assert got == before, f"recovered answers differ:\n  pre-kill {before}\n  post    {got}"
# doc 1's edit lived only in the journal tail; its version must survive
assert any(d["doc"] == 1 and d["version"] == 1 for d in r["docs"]), r["docs"]
bye = rpc({"op": "shutdown"})
assert bye["ok"], bye
print("twx-serve --store: kill -9 mid-journal, restart over binary frames,",
      "and every answer matched node-for-node (snapshot + journal-tail replay)")
EOF
wait "$serve2_pid"

say "all checks passed"
